"""Typed results of the pipeline stages."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple

import numpy as np

from repro.annotation.matcher import ClusterAnnotation
from repro.clustering.dbscan import NOISE, DBSCANResult
from repro.communities.models import Post
from repro.core.cache import CacheStats
from repro.utils.parallel import ExecutionReport

__all__ = [
    "ClusterKey",
    "CommunityClustering",
    "OccurrenceTable",
    "PipelineResult",
    "StageReport",
]


@dataclass
class StageReport:
    """What one runner stage did: outcome, effort, and fault handling.

    Attributes
    ----------
    name:
        Stage name (``cluster``, ``screenshot-filter``, ``annotate``,
        ``associate``).
    status:
        ``"completed"`` (ran clean), ``"resumed"`` (loaded from
        checkpoint), ``"degraded"`` (finished via fallback/quarantine),
        or ``"failed"``.
    attempts:
        Work-item executions including retries (0 when resumed).
    duration_s:
        Wall time of the stage, checkpoint I/O included.
    fallbacks:
        Degradation-ladder steps taken, e.g. ``"classifier->oracle"``.
    quarantined:
        Items isolated after permanent failure, e.g. ``"cluster:pol"``.
    resumed:
        Whether the output came from a checkpoint.
    error:
        Message of the error that triggered degradation, if any.
    notes:
        Free-form diagnostics (invalid-checkpoint reasons, retry info).
    execution:
        Supervised-executor report for the stage's parallel fan-out
        (per-shard attempts/outcomes), when the stage ran one.
    cached:
        Whether the stage's output came entirely from the content cache
        (every lookup hit and no delta work ran).  Distinct from
        ``resumed``: a resume replays a *checkpoint* of this exact run
        directory, a cache hit reuses *content-addressed* results from
        any previous run over the same inputs.
    cache_stats:
        This stage's slice of the content cache's activity
        (hits/misses/deltas), when the runner had a cache.
    """

    name: str
    status: str = "completed"
    attempts: int = 0
    duration_s: float = 0.0
    fallbacks: list[str] = field(default_factory=list)
    quarantined: list[str] = field(default_factory=list)
    resumed: bool = False
    error: str | None = None
    notes: list[str] = field(default_factory=list)
    execution: ExecutionReport | None = None
    cached: bool = False
    cache_stats: CacheStats | None = None

    def summary(self) -> str:
        """One-line human-readable digest (CLI output)."""
        parts = [f"{self.name}: {self.status}"]
        parts.append(f"attempts={self.attempts}")
        parts.append(f"{self.duration_s:.2f}s")
        if self.cached:
            parts.append("cached")
        if self.cache_stats is not None and (
            self.cache_stats.hits
            or self.cache_stats.misses
            or self.cache_stats.errors
        ):
            parts.append(f"cache[{self.cache_stats.summary()}]")
        if self.fallbacks:
            parts.append("fallbacks=" + ",".join(self.fallbacks))
        if self.quarantined:
            parts.append("quarantined=" + ",".join(self.quarantined))
        if self.error:
            parts.append(f"error={self.error}")
        if self.execution is not None:
            parts.append(f"shards=[{self.execution.summary()}]")
        return "  ".join(parts)


class ClusterKey(NamedTuple):
    """Global identity of a cluster: fringe community + local cluster id."""

    community: str
    cluster_id: int

    def __str__(self) -> str:
        return f"{self.community}:{self.cluster_id}"


@dataclass(frozen=True)
class CommunityClustering:
    """Steps 2-3 output for one fringe community.

    Attributes
    ----------
    community:
        The fringe community clustered.
    unique_hashes:
        The deduplicated pHashes the clustering ran over.
    counts:
        Image multiplicity per unique hash.
    result:
        DBSCAN labels/cores over ``unique_hashes``.
    medoids:
        ``{cluster_id: medoid pHash}``.
    n_images:
        Total images (sum of ``counts``).
    """

    community: str
    unique_hashes: np.ndarray
    counts: np.ndarray
    result: DBSCANResult
    medoids: dict[int, np.uint64]

    @property
    def n_images(self) -> int:
        return int(self.counts.sum())

    @property
    def n_clusters(self) -> int:
        return self.result.n_clusters

    @property
    def image_noise_fraction(self) -> float:
        """Fraction of *images* labelled noise (Table 2's noise column)."""
        if self.n_images == 0:
            return 0.0
        noise_images = int(self.counts[self.result.labels == NOISE].sum())
        return noise_images / self.n_images


@dataclass(frozen=True)
class OccurrenceTable:
    """Flat table of meme occurrences (Step 6 output), column-oriented.

    One row per post whose image matched an annotated cluster.  Columns
    are aligned numpy arrays / lists for cheap group-bys in the analysis
    layer.
    """

    posts: list[Post]
    cluster_indices: np.ndarray  # index into PipelineResult.cluster_keys
    entry_names: list[str]  # representative KYM entry per occurrence
    is_racist: np.ndarray
    is_politics: np.ndarray

    def __post_init__(self) -> None:
        n = len(self.posts)
        if not (
            len(self.cluster_indices)
            == len(self.entry_names)
            == len(self.is_racist)
            == len(self.is_politics)
            == n
        ):
            raise ValueError("occurrence columns must be aligned")

    def __len__(self) -> int:
        return len(self.posts)

    def communities(self) -> np.ndarray:
        return np.array([post.community for post in self.posts], dtype=object)

    def timestamps(self) -> np.ndarray:
        return np.array([post.timestamp for post in self.posts])


@dataclass(frozen=True)
class PipelineResult:
    """Everything the Step 1-7 run produced.

    Attributes
    ----------
    clusterings:
        Per fringe community, the Steps 2-3 output.
    annotations:
        Per cluster key, the Step 5 annotation (annotated clusters only).
    cluster_keys:
        Global ordering of annotated clusters; ``occurrences``'s
        ``cluster_indices`` point into this list.
    occurrences:
        The Step 6 association table over every community's posts.
    screenshot_report:
        Step 4 evaluation metrics when the classifier ran, else ``None``.
    stage_reports:
        Per-stage :class:`StageReport` records when the run went through
        the staged runner; empty for directly-assembled results.
    """

    clusterings: dict[str, CommunityClustering]
    annotations: dict[ClusterKey, ClusterAnnotation]
    cluster_keys: list[ClusterKey]
    occurrences: OccurrenceTable
    screenshot_report: object | None = None
    stage_reports: list[StageReport] = field(default_factory=list)
    _key_index: dict[ClusterKey, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "_key_index",
            {key: i for i, key in enumerate(self.cluster_keys)},
        )

    def annotation_of(self, key: ClusterKey) -> ClusterAnnotation:
        return self.annotations[key]

    def annotated_clusters_of(self, community: str) -> list[ClusterKey]:
        """Annotated cluster keys originating from one fringe community."""
        return [key for key in self.cluster_keys if key.community == community]

    def n_annotated(self, community: str | None = None) -> int:
        if community is None:
            return len(self.cluster_keys)
        return len(self.annotated_clusters_of(community))

    def stage_report(self, name: str) -> StageReport | None:
        """The report of one runner stage, or ``None`` if absent."""
        for report in self.stage_reports:
            if report.name == name:
                return report
        return None

    @property
    def degraded(self) -> bool:
        """Whether any stage finished via fallback or quarantine."""
        return any(report.status == "degraded" for report in self.stage_reports)
