"""Orchestration of the paper's processing pipeline (Fig. 2, Steps 1-7).

The pipeline consumes a :class:`~repro.communities.world.SyntheticWorld`
(or any object exposing the same ``posts``/``kym_site`` interface):

1. **pHash extraction** happened at world generation (every post carries
   its image's pHash, as the paper computes hashes on ingest and discards
   the raw images).
2-3. **Pairwise distances + DBSCAN** over each fringe community's image
   multiset.
4. **Screenshot removal** from KYM galleries (oracle flags or the CNN).
5. **Cluster annotation** of medoids against the filtered galleries.
6. **Association** of every community's posts with annotated medoids.
7. The analysis layer (:mod:`repro.analysis`) consumes the result.
"""

from __future__ import annotations

import numpy as np

from repro.annotation.kym import KYMSite
from repro.annotation.screenshots import ScreenshotClassifier, build_screenshot_dataset
from repro.clustering.dbscan import dbscan
from repro.clustering.medoid import medoids_by_cluster
from repro.communities.models import Post
from repro.core.config import PipelineConfig
from repro.core.results import CommunityClustering, PipelineResult
from repro.utils.rng import derive_rng

__all__ = ["run_pipeline", "cluster_community", "filter_kym_screenshots"]


def cluster_community(
    community: str,
    posts: list[Post],
    config: PipelineConfig,
    *,
    parallel=None,
) -> CommunityClustering:
    """Steps 2-3 for one fringe community's image multiset.

    ``parallel`` (a :class:`repro.utils.parallel.ParallelConfig`) shards
    the radius-neighbourhood computation; labels are identical for any
    worker count.
    """
    image_hashes = np.array(
        [post.phash for post in posts if post.community == community],
        dtype=np.uint64,
    )
    if image_hashes.size == 0:
        unique = np.empty(0, dtype=np.uint64)
        counts = np.empty(0, dtype=np.int64)
        result = dbscan(unique, eps=config.clustering_eps)
        return CommunityClustering(
            community=community,
            unique_hashes=unique,
            counts=counts,
            result=result,
            medoids={},
        )
    unique, counts = np.unique(image_hashes, return_counts=True)
    result = dbscan(
        unique,
        eps=config.clustering_eps,
        min_samples=config.clustering_min_samples,
        method=config.neighbor_method,
        counts=counts,
        parallel=parallel,
    )
    medoid_positions = medoids_by_cluster(unique, result.labels, counts)
    medoids = {
        cluster_id: np.uint64(unique[position])
        for cluster_id, position in medoid_positions.items()
    }
    return CommunityClustering(
        community=community,
        unique_hashes=unique,
        counts=counts,
        result=result,
        medoids=medoids,
    )


def filter_kym_screenshots(
    site: KYMSite,
    config: PipelineConfig,
    *,
    seed: int = 0,
    library=None,
):
    """Step 4: decide which gallery images to exclude as screenshots.

    Returns ``(exclude_oracle, report)`` where ``exclude_oracle`` tells
    the annotator whether to drop ground-truth-flagged screenshots, and
    ``report`` carries classifier metrics when the CNN mode ran.

    In ``"classifier"`` mode the CNN is trained on synthetic
    screenshot/organic data and *applied to the galleries' retained
    rasters*; its decisions overwrite the oracle flags.
    """
    if config.screenshot_filter == "none":
        return False, None
    if config.screenshot_filter == "oracle":
        return True, None
    if library is None:
        raise ValueError("classifier mode needs the template library")
    rng = derive_rng(seed, "screenshot-classifier")
    x, y = build_screenshot_dataset(library, rng)
    classifier = ScreenshotClassifier(rng)
    x_train, y_train, x_test, y_test = classifier.train_eval_split(x, y, rng)
    classifier.fit(x_train, y_train)
    report = classifier.evaluate(x_test, y_test)
    # Re-flag gallery images that kept their rasters.
    for entry in site:
        for index, image in enumerate(entry.gallery):
            if image.image is None:
                continue
            decided = classifier.is_screenshot(image.image)
            if decided != image.is_screenshot:
                entry.gallery[index] = type(image)(
                    phash=image.phash,
                    is_screenshot=decided,
                    template_name=image.template_name,
                    image=image.image,
                )
    return True, report


def run_pipeline(
    world,
    config: PipelineConfig | None = None,
    *,
    options=None,
) -> PipelineResult:
    """Run Steps 2-6 over a generated world.

    Since the staged-runner refactor this is a thin compatibility
    wrapper over :class:`repro.core.runner.PipelineRunner`; pass
    ``options`` (a :class:`repro.core.runner.RunnerOptions`) to turn on
    checkpointing, resume, retries, or fault injection.

    Parameters
    ----------
    world:
        A :class:`~repro.communities.world.SyntheticWorld` (or compatible
        object with ``posts``, ``kym_site``, ``library`` and
        ``catalog_entry``).
    config:
        Pipeline constants; defaults to the paper's values.
    options:
        Runner execution options; defaults to run-everything-in-process
        with no checkpoints (the historical behaviour).
    """
    from repro.core.runner import PipelineRunner

    return PipelineRunner(world, config, options).run()
