"""Content-addressed memoization for the pipeline's hot paths.

The paper's production pipeline ran repeatedly over a *growing* corpus
(ultimately 160M images): new crawls arrive, but yesterday's pHashes,
neighbourhoods, and associations are still valid.  Recomputing them on
every invocation is pure waste.  This module provides the caching
substrate the staged runner and the hashing kernels share:

* **Content addressing** — cache keys are sha256 fingerprints over the
  *inputs* of a computation: the raw arrays (dtype + shape + bytes),
  the config values that parameterise it, and :data:`CODE_VERSION`.
  Two runs that feed a kernel identical inputs hit the same entry no
  matter which run wrote it; any change to an input, a threshold, or
  the cache format yields a different key and a clean miss.  A false
  *miss* merely recomputes; a false *hit* would need a sha256
  collision.
* **Two tiers** — a bounded in-memory LRU (:class:`ContentCache` keeps
  the hottest entries live) over an optional on-disk tier that reuses
  the integrity-checked ``RPC1`` checkpoint container from
  :mod:`repro.utils.io`.  A corrupt, truncated, or stale disk entry is
  detected by the container's digest, reported in
  :class:`CacheStats.errors`, deleted, and treated as a miss — bad
  state can never flow back into a run.
* **Slots** — delta-aware callers (incremental clustering/association)
  use entries whose *key* identifies the computation and whose *value*
  carries its own input fingerprint, so a superset input can reuse the
  previous output as a starting point.  Such callers fetch with
  ``get(key, count=False)`` and classify the outcome themselves once
  they have compared fingerprints (full hit / delta / recompute).

Statistics (hits/misses/stores/evictions/bytes/deltas) accumulate on
:class:`CacheStats`; the runner snapshots them per stage onto
:class:`repro.core.results.StageReport`.
"""

from __future__ import annotations

import hashlib
import pickle
from dataclasses import dataclass, field, fields, is_dataclass
from pathlib import Path
from typing import Callable

import numpy as np

from repro.utils.io import CheckpointError, load_checkpoint, save_checkpoint

__all__ = [
    "CODE_VERSION",
    "CacheStats",
    "ContentCache",
    "fingerprint",
    "fingerprint_array",
]

# Bump when a cached computation's semantics change: every key embeds
# this, so old entries become unreachable instead of silently wrong.
CODE_VERSION = "repro-cache|v2"

_CHECKPOINT_PREFIX = "repro-cache-entry"


def _update_hasher(hasher, value) -> None:
    """Feed one value into a hash, tagged by type to avoid collisions
    between e.g. ``1`` and ``"1"`` or ``()`` and ``""``."""
    if value is None:
        hasher.update(b"\x00N")
    elif isinstance(value, bool):
        hasher.update(b"\x00B" + (b"1" if value else b"0"))
    elif isinstance(value, (int, np.integer)):
        hasher.update(b"\x00I" + str(int(value)).encode())
    elif isinstance(value, (float, np.floating)):
        hasher.update(b"\x00F" + repr(float(value)).encode())
    elif isinstance(value, str):
        hasher.update(b"\x00S" + value.encode("utf-8"))
    elif isinstance(value, bytes):
        hasher.update(b"\x00Y" + value)
    elif isinstance(value, np.ndarray):
        arr = np.ascontiguousarray(value)
        hasher.update(
            b"\x00A" + str(arr.dtype).encode() + str(arr.shape).encode()
        )
        hasher.update(arr.tobytes())
    elif isinstance(value, (tuple, list)):
        hasher.update(b"\x00T" + str(len(value)).encode())
        for item in value:
            _update_hasher(hasher, item)
    elif isinstance(value, dict):
        hasher.update(b"\x00D" + str(len(value)).encode())
        for k in sorted(value, key=repr):
            _update_hasher(hasher, k)
            _update_hasher(hasher, value[k])
    elif isinstance(value, (set, frozenset)):
        hasher.update(b"\x00E" + str(len(value)).encode())
        for item in sorted(value, key=repr):
            _update_hasher(hasher, item)
    elif is_dataclass(value) and not isinstance(value, type):
        # Recurse into dataclass fields rather than pickling: pickle
        # serialises embedded sets in iteration order, which varies
        # with PYTHONHASHSEED across processes — a KYM entry's
        # ``tags`` frozenset would give every process a different
        # fingerprint for identical content.  The recursion routes
        # sets/dicts through the sorted branches above.
        hasher.update(b"\x00O" + type(value).__qualname__.encode())
        for f in fields(value):
            _update_hasher(hasher, f.name)
            _update_hasher(hasher, getattr(value, f.name))
    elif isinstance(getattr(value, "__dict__", None), dict):
        # Plain objects: hash their attribute dict (sorted), same
        # hash-randomization rationale as the dataclass branch.
        hasher.update(b"\x00O" + type(value).__qualname__.encode())
        _update_hasher(hasher, vars(value))
    else:
        # Remaining picklable objects (slotted classes without state
        # dicts, builtins).  Pickle bytes are deterministic for a fixed
        # object graph within one interpreter generation; a
        # representation change across versions can only cause a miss,
        # never a wrong hit.
        hasher.update(b"\x00P" + pickle.dumps(value, protocol=5))


def fingerprint(*parts) -> str:
    """sha256 hex digest over a heterogeneous tuple of inputs."""
    hasher = hashlib.sha256()
    for part in parts:
        _update_hasher(hasher, part)
    return hasher.hexdigest()


def fingerprint_array(array: np.ndarray) -> str:
    """sha256 hex digest of one array's dtype, shape, and contents."""
    return fingerprint(np.asarray(array))


@dataclass
class CacheStats:
    """Counters of one :class:`ContentCache`'s activity.

    ``deltas`` records incremental-work sizes by label (e.g.
    ``"cluster:pol:reused" -> 480`` unique hashes patched rather than
    recomputed); ``errors`` is the trail of corrupt/stale disk entries
    that were discarded and recomputed.
    """

    hits: int = 0
    misses: int = 0
    stores: int = 0
    evictions: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    errors: list[str] = field(default_factory=list)
    deltas: dict[str, int] = field(default_factory=dict)

    def copy(self) -> "CacheStats":
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            stores=self.stores,
            evictions=self.evictions,
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
            errors=list(self.errors),
            deltas=dict(self.deltas),
        )

    def since(self, base: "CacheStats") -> "CacheStats":
        """The activity that happened after ``base`` was snapshotted."""
        return CacheStats(
            hits=self.hits - base.hits,
            misses=self.misses - base.misses,
            stores=self.stores - base.stores,
            evictions=self.evictions - base.evictions,
            bytes_read=self.bytes_read - base.bytes_read,
            bytes_written=self.bytes_written - base.bytes_written,
            errors=self.errors[len(base.errors) :],
            deltas={
                label: count - base.deltas.get(label, 0)
                for label, count in self.deltas.items()
                if count != base.deltas.get(label, 0)
            },
        )

    def note_delta(self, label: str, count: int) -> None:
        self.deltas[label] = self.deltas.get(label, 0) + int(count)

    def summary(self) -> str:
        """Compact digest for stage reports, e.g. ``hits=4 misses=0``."""
        parts = [f"hits={self.hits}", f"misses={self.misses}"]
        if self.evictions:
            parts.append(f"evictions={self.evictions}")
        if self.errors:
            parts.append(f"errors={len(self.errors)}")
        if self.deltas:
            deltas = ",".join(
                f"{label}={count}" for label, count in sorted(self.deltas.items())
            )
            parts.append(f"delta[{deltas}]")
        return " ".join(parts)


class ContentCache:
    """Two-tier content-addressed cache: in-memory LRU over disk.

    Parameters
    ----------
    directory:
        On-disk tier root; ``None`` keeps the cache memory-only.
        Entries live at ``<directory>/<key[:2]>/<key>.ckpt`` in the
        integrity-checked ``RPC1`` container, so a warm run survives
        process restarts and corruption is detected, not trusted.
    max_memory_entries:
        LRU bound of the memory tier (least recently used evicts
        first; disk copies survive eviction).
    stats:
        Optional shared :class:`CacheStats`; a fresh one by default.
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        *,
        max_memory_entries: int = 128,
        stats: CacheStats | None = None,
    ) -> None:
        if max_memory_entries < 1:
            raise ValueError("max_memory_entries must be >= 1")
        self.directory = Path(directory) if directory is not None else None
        self.max_memory_entries = max_memory_entries
        self.stats = stats if stats is not None else CacheStats()
        self._memory: dict[str, object] = {}

    # -- keys ----------------------------------------------------------

    def key(self, kind: str, *parts) -> str:
        """Content-addressed key: sha256 over code version + kind + inputs."""
        return fingerprint(CODE_VERSION, kind, *parts)

    def _entry_path(self, key: str) -> Path | None:
        if self.directory is None:
            return None
        return self.directory / key[:2] / f"{key}.ckpt"

    def _entry_fingerprint(self, key: str) -> str:
        return f"{_CHECKPOINT_PREFIX}|{CODE_VERSION}|{key}"

    # -- tiers ---------------------------------------------------------

    def get(self, key: str, *, count: bool = True) -> tuple[bool, object]:
        """``(hit, value)``; corrupt/stale disk entries count as misses.

        ``count=False`` leaves the hit/miss counters to the caller —
        slot entries are only a *real* hit once the caller has compared
        the stored input fingerprint against the live inputs.
        """
        if key in self._memory:
            value = self._memory.pop(key)  # re-insert: most recently used
            self._memory[key] = value
            if count:
                self.stats.hits += 1
            return True, value
        path = self._entry_path(key)
        if path is not None and path.exists():
            try:
                size = path.stat().st_size
                payload = load_checkpoint(
                    path, fingerprint=self._entry_fingerprint(key)
                )
                if not isinstance(payload, dict) or "value" not in payload:
                    raise CheckpointError(f"{path}: cache entry missing value")
            except CheckpointError as error:
                # Bad entry: report, delete, recompute.
                self.stats.errors.append(str(error))
                try:
                    path.unlink()
                except OSError:
                    pass
            else:
                value = payload["value"]
                self._remember(key, value)
                if count:
                    self.stats.hits += 1
                self.stats.bytes_read += size
                return True, value
        if count:
            self.stats.misses += 1
        return False, None

    def put(self, key: str, value, *, disk: bool = True) -> None:
        """Store ``value`` in the memory tier and (optionally) on disk."""
        self._remember(key, value)
        path = self._entry_path(key)
        if disk and path is not None:
            path.parent.mkdir(parents=True, exist_ok=True)
            save_checkpoint(
                path, {"value": value}, fingerprint=self._entry_fingerprint(key)
            )
            self.stats.stores += 1
            try:
                self.stats.bytes_written += path.stat().st_size
            except OSError:
                pass

    def get_or_compute(
        self, key: str, compute: Callable[[], object], *, disk: bool = True
    ):
        hit, value = self.get(key)
        if hit:
            return value
        value = compute()
        self.put(key, value, disk=disk)
        return value

    def _remember(self, key: str, value) -> None:
        if key in self._memory:
            self._memory.pop(key)
        self._memory[key] = value
        while len(self._memory) > self.max_memory_entries:
            oldest = next(iter(self._memory))
            self._memory.pop(oldest)
            self.stats.evictions += 1

    # -- inspection / maintenance --------------------------------------

    def entries(self) -> list[tuple[str, int]]:
        """``(key, bytes)`` of every on-disk entry, sorted by key."""
        if self.directory is None or not self.directory.exists():
            return []
        found = []
        for path in sorted(self.directory.glob("*/*.ckpt")):
            try:
                found.append((path.stem, path.stat().st_size))
            except OSError:
                continue
        return found

    def total_bytes(self) -> int:
        return sum(size for _, size in self.entries())

    def clear(self) -> int:
        """Drop both tiers; returns the number of disk entries removed."""
        self._memory.clear()
        removed = 0
        if self.directory is not None and self.directory.exists():
            for path in self.directory.glob("*/*.ckpt"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    continue
        return removed

    def __len__(self) -> int:
        return len(self._memory)
