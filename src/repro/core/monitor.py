"""Real-time meme identification — the paper's deployment scenario.

Discussion section: "our pipeline can already be used by social network
providers to assist the identification of hateful content; for instance,
Facebook is taking steps to ban Pepe the Frog used in the context of
hate... our methodology can help them automatically identify hateful
variants."

:class:`MemeMonitor` packages a finished pipeline run for that use: it
indexes the annotated cluster medoids (multi-index hashing, so lookups
are sub-millisecond) and classifies incoming images — raster or pHash —
into known memes with their racist/politics flags.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.annotation.matcher import DEFAULT_THETA
from repro.core.results import ClusterKey, PipelineResult
from repro.hashing.index import MultiIndexHash
from repro.hashing.phash import phash

__all__ = ["MonitorVerdict", "MemeMonitor"]


def _validated_hash_array(hashes) -> np.ndarray:
    """Coerce a batch of pHashes to contiguous uint64, rejecting garbage.

    The uint64 range check must happen *before* the dtype conversion:
    ``np.ascontiguousarray(x, dtype=np.uint64)`` wraps negative and
    oversized inputs modulo ``2**64`` without complaint.
    """
    arr = np.asarray(hashes)
    if arr.dtype.kind == "f" and not isinstance(hashes, np.ndarray):
        # numpy promotes mixed-magnitude python-int sequences (e.g.
        # [5, 2**63]) to float64; re-coerce exactly via the object path.
        arr = np.asarray(hashes, dtype=object)
    if arr.ndim != 1:
        raise ValueError(
            f"classify_batch expects a 1-D array of pHashes, got ndim={arr.ndim}"
        )
    if arr.size == 0:
        return np.empty(0, dtype=np.uint64)
    if arr.dtype == np.uint64:
        return np.ascontiguousarray(arr)
    if arr.dtype.kind == "u":  # narrower unsigned: always in range
        return np.ascontiguousarray(arr, dtype=np.uint64)
    if arr.dtype.kind == "i":
        negative = np.flatnonzero(arr < 0)
        if negative.size:
            index = int(negative[0])
            raise ValueError(
                f"pHash at index {index} is negative ({int(arr[index])}); "
                "hashes must lie in [0, 2**64)"
            )
        return np.ascontiguousarray(arr, dtype=np.uint64)
    if arr.dtype == object:
        values = np.empty(arr.size, dtype=np.uint64)
        for index, value in enumerate(arr):
            if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
                raise TypeError(
                    f"pHash at index {index} is {type(value).__name__}, "
                    "expected an integer"
                )
            value = int(value)
            if not 0 <= value < 2**64:
                raise ValueError(
                    f"pHash at index {index} ({value}) outside the unsigned "
                    "64-bit range [0, 2**64)"
                )
            values[index] = value
        return values
    raise TypeError(
        f"classify_batch expects integer pHashes, got dtype {arr.dtype}"
    )


@dataclass(frozen=True)
class MonitorVerdict:
    """The monitor's decision for one image.

    Attributes
    ----------
    matched:
        Whether the image lies within θ of a known meme cluster medoid.
    cluster:
        The matched cluster's key, or ``None``.
    entry:
        The representative KYM entry of the matched cluster.
    distance:
        Hamming distance to the matched medoid (-1 if unmatched).
    is_racist, is_politics:
        Group flags of the matched meme (False when unmatched).
    """

    matched: bool
    cluster: ClusterKey | None
    entry: str | None
    distance: int
    is_racist: bool
    is_politics: bool

    @classmethod
    def no_match(cls) -> "MonitorVerdict":
        return cls(
            matched=False,
            cluster=None,
            entry=None,
            distance=-1,
            is_racist=False,
            is_politics=False,
        )


class MemeMonitor:
    """Classify incoming images against a pipeline run's annotated memes.

    Parameters
    ----------
    result:
        A completed pipeline run whose annotated clusters form the
        knowledge base.
    theta:
        Matching threshold (the paper's θ = 8).

    Examples
    --------
    >>> # monitor = MemeMonitor(pipeline_result)
    >>> # verdict = monitor.classify_image(uploaded_image)
    >>> # if verdict.matched and verdict.is_racist: flag_for_review()
    """

    def __init__(self, result: PipelineResult, *, theta: int = DEFAULT_THETA) -> None:
        if theta < 0:
            raise ValueError("theta must be non-negative")
        self.theta = theta
        self._keys = list(result.cluster_keys)
        self._annotations = [result.annotations[key] for key in self._keys]
        medoids = np.array(
            [annotation.medoid_hash for annotation in self._annotations],
            dtype=np.uint64,
        )
        self._index = MultiIndexHash(medoids) if medoids.size else None

    def __len__(self) -> int:
        """Number of known meme clusters."""
        return len(self._keys)

    def close(self) -> None:
        """Release resources held beyond the interpreter heap.

        The base monitor owns only in-process indexes, so this is a
        no-op — but the serving layer calls it on every monitor it
        displaces (see ``MemeMatchService.reload_index``), so a
        subclass backed by external resources (e.g. published
        shared-memory segments) reclaims them by overriding this.
        Must be idempotent.
        """

    def classify_hash(self, value: np.uint64 | int) -> MonitorVerdict:
        """Classify a pre-computed pHash.

        Raises
        ------
        TypeError
            If ``value`` is not an integer-like scalar.
        ValueError
            If ``value`` lies outside the unsigned 64-bit range — a
            pHash is exactly 64 bits, so anything else is caller error
            (e.g. a sign-flipped or double-packed hash), not an unmatched
            image.
        """
        try:
            value = int(value)
        except (TypeError, ValueError):
            raise TypeError(
                f"pHash must be an integer-like scalar, got {type(value).__name__}"
            )
        if not 0 <= value < 2**64:
            raise ValueError(
                f"pHash {value} outside the unsigned 64-bit range [0, 2**64)"
            )
        if self._index is None:
            return MonitorVerdict.no_match()
        pairs = self._index.query(int(value), self.theta)
        if not pairs:
            return MonitorVerdict.no_match()
        position, distance = min(pairs, key=lambda p: (p[1], p[0]))
        annotation = self._annotations[position]
        return MonitorVerdict(
            matched=True,
            cluster=self._keys[position],
            entry=annotation.representative,
            distance=int(distance),
            is_racist=annotation.is_racist,
            is_politics=annotation.is_politics,
        )

    def classify_image(self, image: np.ndarray) -> MonitorVerdict:
        """Hash a raster and classify it.

        Raises
        ------
        ValueError
            If ``image`` is empty or not a 2-D grayscale / 3-D
            ``(H, W, C)`` raster — caught here with a clear message
            rather than failing deep inside the pHash DCT.
        """
        raster = np.asarray(image)
        if raster.ndim not in (2, 3):
            raise ValueError(
                "classify_image expects a 2-D grayscale or 3-D (H, W, C) "
                f"raster, got ndim={raster.ndim}"
            )
        if raster.size == 0 or min(raster.shape[:2]) == 0:
            raise ValueError(
                f"classify_image got an empty raster of shape {raster.shape}"
            )
        return self.classify_hash(phash(raster))

    def classify_batch(self, hashes: np.ndarray) -> list[MonitorVerdict]:
        """Classify many pHashes (memoised over duplicates).

        Raises
        ------
        TypeError
            If ``hashes`` is not integer-typed (floats and arbitrary
            objects are rejected, mirroring :meth:`classify_hash`).
        ValueError
            If the input is not 1-D or any element lies outside the
            unsigned 64-bit range.  A blind ``astype(uint64)`` would
            silently wrap negative/oversized values modulo ``2**64``
            and classify the garbage hash; bad elements are rejected
            here with their index instead.
        """
        hashes = _validated_hash_array(hashes)
        cache: dict[int, MonitorVerdict] = {}
        verdicts = []
        for value in hashes:
            key = int(value)
            verdict = cache.get(key)
            if verdict is None:
                verdict = self.classify_hash(key)
                cache[key] = verdict
            verdicts.append(verdict)
        return verdicts

    def flagged_entries(self) -> dict[str, tuple[bool, bool]]:
        """All known entries with their (racist, politics) flags."""
        flags: dict[str, tuple[bool, bool]] = {}
        for annotation in self._annotations:
            flags[annotation.representative] = (
                annotation.is_racist,
                annotation.is_politics,
            )
        return flags
