"""Real-time meme identification — the paper's deployment scenario.

Discussion section: "our pipeline can already be used by social network
providers to assist the identification of hateful content; for instance,
Facebook is taking steps to ban Pepe the Frog used in the context of
hate... our methodology can help them automatically identify hateful
variants."

:class:`MemeMonitor` packages a finished pipeline run for that use: it
indexes the annotated cluster medoids (multi-index hashing, so lookups
are sub-millisecond) and classifies incoming images — raster or pHash —
into known memes with their racist/politics flags.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.annotation.matcher import DEFAULT_THETA
from repro.core.results import ClusterKey, PipelineResult
from repro.hashing.index import MultiIndexHash
from repro.hashing.phash import phash
from repro.utils.bitops import popcount

__all__ = ["MonitorVerdict", "MemeMonitor"]

# Elements per broadcast popcount matrix (unique hashes x medoids); a
# batch with more pairs than this classifies its hashes in slices, so
# peak memory stays bounded without changing results.
_PAIR_BUDGET = 1 << 22


def _validated_hash_array(hashes) -> np.ndarray:
    """Coerce a batch of pHashes to contiguous uint64, rejecting garbage.

    The uint64 range check must happen *before* the dtype conversion:
    ``np.ascontiguousarray(x, dtype=np.uint64)`` wraps negative and
    oversized inputs modulo ``2**64`` without complaint.
    """
    arr = np.asarray(hashes)
    if arr.dtype.kind == "f" and not isinstance(hashes, np.ndarray):
        # numpy promotes mixed-magnitude python-int sequences (e.g.
        # [5, 2**63]) to float64; re-coerce exactly via the object path.
        arr = np.asarray(hashes, dtype=object)
    if arr.ndim != 1:
        raise ValueError(
            f"classify_batch expects a 1-D array of pHashes, got ndim={arr.ndim}"
        )
    if arr.size == 0:
        return np.empty(0, dtype=np.uint64)
    if arr.dtype == np.uint64:
        return np.ascontiguousarray(arr)
    if arr.dtype.kind == "u":  # narrower unsigned: always in range
        return np.ascontiguousarray(arr, dtype=np.uint64)
    if arr.dtype.kind == "i":
        negative = np.flatnonzero(arr < 0)
        if negative.size:
            index = int(negative[0])
            raise ValueError(
                f"pHash at index {index} is negative ({int(arr[index])}); "
                "hashes must lie in [0, 2**64)"
            )
        return np.ascontiguousarray(arr, dtype=np.uint64)
    if arr.dtype == object:
        # Elementwise sweeps instead of a Python-level loop: one type
        # sweep, one exact-integer range sweep over the prefix before
        # the first type error (so the first offending element in
        # *input order* still wins, whatever kind of garbage it is),
        # then a single exact object->uint64 cast.
        is_integer = np.frompyfunc(
            lambda v: isinstance(v, (int, np.integer))
            and not isinstance(v, bool),
            1,
            1,
        )(arr).astype(bool)
        type_bad = np.flatnonzero(~is_integer)
        limit = int(type_bad[0]) if type_bad.size else arr.size
        if limit:
            as_int = np.frompyfunc(int, 1, 1)(arr[:limit])
            range_bad = np.flatnonzero((as_int < 0) | (as_int >= 2**64))
            if range_bad.size:
                index = int(range_bad[0])
                raise ValueError(
                    f"pHash at index {index} ({int(as_int[index])}) outside "
                    "the unsigned 64-bit range [0, 2**64)"
                )
        if type_bad.size:
            index = limit
            raise TypeError(
                f"pHash at index {index} is {type(arr[index]).__name__}, "
                "expected an integer"
            )
        return as_int.astype(np.uint64)
    raise TypeError(
        f"classify_batch expects integer pHashes, got dtype {arr.dtype}"
    )


@dataclass(frozen=True)
class MonitorVerdict:
    """The monitor's decision for one image.

    Attributes
    ----------
    matched:
        Whether the image lies within θ of a known meme cluster medoid.
    cluster:
        The matched cluster's key, or ``None``.
    entry:
        The representative KYM entry of the matched cluster.
    distance:
        Hamming distance to the matched medoid (-1 if unmatched).
    is_racist, is_politics:
        Group flags of the matched meme (False when unmatched).
    """

    matched: bool
    cluster: ClusterKey | None
    entry: str | None
    distance: int
    is_racist: bool
    is_politics: bool

    @classmethod
    def no_match(cls) -> "MonitorVerdict":
        return cls(
            matched=False,
            cluster=None,
            entry=None,
            distance=-1,
            is_racist=False,
            is_politics=False,
        )


class MemeMonitor:
    """Classify incoming images against a pipeline run's annotated memes.

    Parameters
    ----------
    result:
        A completed pipeline run whose annotated clusters form the
        knowledge base.
    theta:
        Matching threshold (the paper's θ = 8).

    Examples
    --------
    >>> # monitor = MemeMonitor(pipeline_result)
    >>> # verdict = monitor.classify_image(uploaded_image)
    >>> # if verdict.matched and verdict.is_racist: flag_for_review()
    """

    def __init__(self, result: PipelineResult, *, theta: int = DEFAULT_THETA) -> None:
        if theta < 0:
            raise ValueError("theta must be non-negative")
        self.theta = theta
        self._keys = list(result.cluster_keys)
        self._annotations = [result.annotations[key] for key in self._keys]
        medoids = np.array(
            [annotation.medoid_hash for annotation in self._annotations],
            dtype=np.uint64,
        )
        self._medoids = medoids
        self._index = MultiIndexHash(medoids) if medoids.size else None
        self._racist_flags = np.array(
            [annotation.is_racist for annotation in self._annotations],
            dtype=bool,
        )
        self._politics_flags = np.array(
            [annotation.is_politics for annotation in self._annotations],
            dtype=bool,
        )

    def __len__(self) -> int:
        """Number of known meme clusters."""
        return len(self._keys)

    def close(self) -> None:
        """Release resources held beyond the interpreter heap.

        The base monitor owns only in-process indexes, so this is a
        no-op — but the serving layer calls it on every monitor it
        displaces (see ``MemeMatchService.reload_index``), so a
        subclass backed by external resources (e.g. published
        shared-memory segments) reclaims them by overriding this.
        Must be idempotent.
        """

    def classify_hash(self, value: np.uint64 | int) -> MonitorVerdict:
        """Classify a pre-computed pHash.

        Raises
        ------
        TypeError
            If ``value`` is not an integer-like scalar.
        ValueError
            If ``value`` lies outside the unsigned 64-bit range — a
            pHash is exactly 64 bits, so anything else is caller error
            (e.g. a sign-flipped or double-packed hash), not an unmatched
            image.
        """
        try:
            value = int(value)
        except (TypeError, ValueError):
            raise TypeError(
                f"pHash must be an integer-like scalar, got {type(value).__name__}"
            )
        if not 0 <= value < 2**64:
            raise ValueError(
                f"pHash {value} outside the unsigned 64-bit range [0, 2**64)"
            )
        if self._index is None:
            return MonitorVerdict.no_match()
        pairs = self._index.query(int(value), self.theta)
        if not pairs:
            return MonitorVerdict.no_match()
        position, distance = min(pairs, key=lambda p: (p[1], p[0]))
        annotation = self._annotations[position]
        return MonitorVerdict(
            matched=True,
            cluster=self._keys[position],
            entry=annotation.representative,
            distance=int(distance),
            is_racist=annotation.is_racist,
            is_politics=annotation.is_politics,
        )

    def classify_image(self, image: np.ndarray) -> MonitorVerdict:
        """Hash a raster and classify it.

        Raises
        ------
        ValueError
            If ``image`` is empty or not a 2-D grayscale / 3-D
            ``(H, W, C)`` raster — caught here with a clear message
            rather than failing deep inside the pHash DCT.
        """
        raster = np.asarray(image)
        if raster.ndim not in (2, 3):
            raise ValueError(
                "classify_image expects a 2-D grayscale or 3-D (H, W, C) "
                f"raster, got ndim={raster.ndim}"
            )
        if raster.size == 0 or min(raster.shape[:2]) == 0:
            raise ValueError(
                f"classify_image got an empty raster of shape {raster.shape}"
            )
        return self.classify_hash(phash(raster))

    def classify_batch(self, hashes: np.ndarray) -> list[MonitorVerdict]:
        """Classify many pHashes (memoised over duplicates).

        Raises
        ------
        TypeError
            If ``hashes`` is not integer-typed (floats and arbitrary
            objects are rejected, mirroring :meth:`classify_hash`).
        ValueError
            If the input is not 1-D or any element lies outside the
            unsigned 64-bit range.  A blind ``astype(uint64)`` would
            silently wrap negative/oversized values modulo ``2**64``
            and classify the garbage hash; bad elements are rejected
            here with their index instead.
        """
        values = _validated_hash_array(hashes)
        if values.size == 0:
            return []
        if self._index is None:
            return [MonitorVerdict.no_match()] * values.size
        unique, inverse = np.unique(values, return_inverse=True)
        position, distance = self._nearest_medoid(unique)
        no_match = MonitorVerdict.no_match()
        keys = self._keys
        annotations = self._annotations
        racist = self._racist_flags
        politics = self._politics_flags
        unique_verdicts = [
            no_match
            if position[i] < 0
            else MonitorVerdict(
                matched=True,
                cluster=keys[position[i]],
                entry=annotations[position[i]].representative,
                distance=int(distance[i]),
                is_racist=bool(racist[position[i]]),
                is_politics=bool(politics[position[i]]),
            )
            for i in range(unique.size)
        ]
        return [unique_verdicts[j] for j in inverse]

    def _nearest_medoid(
        self, unique: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Nearest annotated medoid within θ per unique hash, densely.

        One broadcast popcount per block replaces a per-hash
        ``MultiIndexHash.query`` loop.  MIH radius queries are exact
        (pigeonhole), so the dense minimum finds the same winner, and
        ``np.argmin`` returns the *first* minimum — the smallest medoid
        position among tied distances, which is exactly
        ``min(pairs, key=lambda p: (p[1], p[0]))``, the tie-break
        :meth:`classify_hash` applies.  Returns ``(-1, -1)`` for hashes
        with no medoid within θ.
        """
        medoids = self._medoids
        best_position = np.full(unique.size, -1, dtype=np.int64)
        best_distance = np.full(unique.size, -1, dtype=np.int64)
        step = max(1, _PAIR_BUDGET // max(1, int(medoids.size)))
        for lo in range(0, unique.size, step):
            block = unique[lo : lo + step]
            distances = popcount(block[:, None] ^ medoids[None, :])
            distances[distances > self.theta] = 65  # > any 64-bit distance
            best_local = np.argmin(distances, axis=1)
            winners = distances[np.arange(block.size), best_local]
            matched = np.flatnonzero(winners <= self.theta)
            best_position[lo + matched] = best_local[matched]
            best_distance[lo + matched] = winners[matched]
        return best_position, best_distance

    def _classify_batch_loop(self, values: np.ndarray) -> list[MonitorVerdict]:
        """Memoised per-element batch path over validated hashes.

        Subclass hook: :class:`~repro.index_cluster.monitor.ShardedMonitor`
        routes batches through here so every element still takes its
        per-request scatter/failover ladder (chaos sites included).
        """
        cache: dict[int, MonitorVerdict] = {}
        verdicts = []
        for value in values:
            key = int(value)
            verdict = cache.get(key)
            if verdict is None:
                verdict = self.classify_hash(key)
                cache[key] = verdict
            verdicts.append(verdict)
        return verdicts

    def flagged_entries(self) -> dict[str, tuple[bool, bool]]:
        """All known entries with their (racist, politics) flags."""
        flags: dict[str, tuple[bool, bool]] = {}
        for annotation in self._annotations:
            flags[annotation.representative] = (
                annotation.is_racist,
                annotation.is_politics,
            )
        return flags
