"""Deterministic random-number plumbing.

Every stochastic component of the reproduction (image synthesis, community
event generation, Hawkes simulation, neural-network initialisation) draws
from a named child stream derived from one master seed.  This keeps runs
reproducible end-to-end while letting components evolve independently:
adding draws to one stream never perturbs another.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_rng", "RngStream"]


def _seed_for(master_seed: int, name: str) -> int:
    """Derive a stable 64-bit seed for ``name`` from ``master_seed``."""
    digest = hashlib.sha256(f"{master_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little")


def derive_rng(master_seed: int, name: str) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for the named stream.

    The mapping ``(master_seed, name) -> stream`` is stable across runs and
    machines (it only depends on SHA-256).

    >>> a = derive_rng(7, "images")
    >>> b = derive_rng(7, "images")
    >>> float(a.random()) == float(b.random())
    True
    """
    return np.random.default_rng(_seed_for(master_seed, name))


class RngStream:
    """A factory of named, independent random generators.

    Parameters
    ----------
    master_seed:
        The single seed the whole experiment is keyed on.

    Examples
    --------
    >>> streams = RngStream(42)
    >>> rng = streams.get("hawkes")
    >>> rng2 = streams.child("hawkes").get("fit")  # nested namespaces
    """

    def __init__(self, master_seed: int) -> None:
        self.master_seed = int(master_seed)
        self._cache: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for ``name``."""
        if name not in self._cache:
            self._cache[name] = derive_rng(self.master_seed, name)
        return self._cache[name]

    def fresh(self, name: str) -> np.random.Generator:
        """Return a brand-new generator for ``name`` (not cached).

        Use this when a component must be re-runnable from its initial
        state, e.g. re-generating the same synthetic world twice.
        """
        return derive_rng(self.master_seed, name)

    def child(self, namespace: str) -> "RngStream":
        """Return a sub-stream whose names live under ``namespace``."""
        return RngStream(_seed_for(self.master_seed, namespace))

    def __repr__(self) -> str:
        return f"RngStream(master_seed={self.master_seed})"
