"""Bit-level operations on 64-bit perceptual hashes.

pHashes are stored as ``numpy.uint64`` scalars/arrays.  Hamming distance is
XOR followed by a population count; the popcount is vectorised through an
8-bit lookup table, which on commodity CPUs is within a small factor of a
native POPCNT loop and needs no compiled extension.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "pack_bits",
    "unpack_bits",
    "popcount",
    "hamming_distance",
    "hamming_to_many",
    "hamming_distance_matrix",
    "flip_random_bits",
]

HASH_BITS = 64

# Popcounts of every byte value; uint8 so sums stay compact.
_POPCOUNT8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)

# numpy >= 2.0 exposes the native POPCNT ufunc; the byte-table fallback
# keeps numpy 1.26 working with identical results.
_HAS_NATIVE_POPCOUNT = hasattr(np, "bitwise_count")


def pack_bits(bits: np.ndarray) -> np.uint64:
    """Pack a length-64 0/1 array into one ``uint64`` (bit 0 = MSB).

    The bit order matches the string form used by the paper's pipeline:
    ``format(pack_bits(b), "016x")`` reads the bits left to right.
    """
    bits = np.asarray(bits).ravel()
    if bits.size != HASH_BITS:
        raise ValueError(f"expected {HASH_BITS} bits, got {bits.size}")
    value = 0
    for bit in bits:
        value = (value << 1) | (1 if bit else 0)
    return np.uint64(value)


def unpack_bits(value: np.uint64 | int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: a ``uint64`` to a length-64 0/1 array."""
    value = int(value)
    return np.array(
        [(value >> shift) & 1 for shift in range(HASH_BITS - 1, -1, -1)],
        dtype=np.uint8,
    )


def popcount(values: np.ndarray | np.uint64 | int) -> np.ndarray | int:
    """Population count of uint64 value(s), vectorised.

    Returns an ``int`` for scalar input, otherwise an array of the same
    shape with dtype ``uint8``-summed into ``int64``-safe ``uint64`` view.
    """
    arr = np.asarray(values, dtype=np.uint64)
    scalar = arr.ndim == 0
    if _HAS_NATIVE_POPCOUNT:
        counts = np.bitwise_count(arr).astype(np.int64)
    else:
        bytes_view = arr.reshape(-1).view(np.uint8).reshape(-1, 8)
        counts = _POPCOUNT8[bytes_view].sum(axis=1).astype(np.int64)
        counts = counts.reshape(arr.shape)
    if scalar:
        return int(counts)
    return counts


def hamming_distance(a: np.uint64 | int, b: np.uint64 | int) -> int:
    """Hamming distance between two 64-bit hashes."""
    return int(popcount(np.uint64(a) ^ np.uint64(b)))


def hamming_to_many(query: np.uint64 | int, hashes: np.ndarray) -> np.ndarray:
    """Hamming distances from ``query`` to every hash in ``hashes``.

    Parameters
    ----------
    query:
        A single 64-bit hash.
    hashes:
        1-D ``uint64`` array.

    Returns
    -------
    numpy.ndarray
        ``int64`` distances, same length as ``hashes``.
    """
    hashes = np.ascontiguousarray(hashes, dtype=np.uint64)
    xored = hashes ^ np.uint64(query)
    return popcount(xored)


def flip_random_bits(
    value: np.uint64 | int,
    n_bits: int,
    rng: np.random.Generator,
) -> np.uint64:
    """Flip ``n_bits`` distinct random bits of a 64-bit hash.

    Models the pHash perturbation a re-encoded (recompressed, resized)
    copy of an image exhibits: the new file hashes a few bits away from
    the original.  The result is at Hamming distance exactly ``n_bits``.
    """
    if not 0 <= n_bits <= HASH_BITS:
        raise ValueError(f"n_bits must be in [0, {HASH_BITS}]")
    result = int(value)
    if n_bits:
        for position in rng.choice(HASH_BITS, size=n_bits, replace=False):
            result ^= 1 << int(position)
    return np.uint64(result)


def _matrix_rows(
    a: np.ndarray, b: np.ndarray, chunk_size: int
) -> np.ndarray:
    """Dense distance rows for one shard of ``a`` against all of ``b``.

    Module-level so process workers can receive pickled shards — or,
    under the shm transport, zero-copy
    :class:`repro.utils.shm.ShmArrayRef` descriptors.  The compiled
    tier (``REPRO_COMPILED``) replaces the broadcast loop with a fused
    native popcount, bit-identically.
    """
    from repro.utils import compiled
    from repro.utils.shm import resolve_array

    a = resolve_array(a, np.uint64)
    b = resolve_array(b, np.uint64)
    fast = compiled.hamming_matrix(a, b)
    if fast is not None:
        return fast
    out = np.empty((a.size, b.size), dtype=np.int64)
    for start in range(0, a.size, chunk_size):
        stop = min(start + chunk_size, a.size)
        xored = a[start:stop, None] ^ b[None, :]
        if _HAS_NATIVE_POPCOUNT:
            out[start:stop] = np.bitwise_count(xored)
        else:
            bytes_view = xored.view(np.uint8).reshape(stop - start, b.size, 8)
            out[start:stop] = _POPCOUNT8[bytes_view].sum(axis=2, dtype=np.int64)
    return out


def _merge_matrix_rows(parts: list[np.ndarray]) -> np.ndarray:
    """Reassemble bisected row-shard outputs: row concatenation."""
    return np.concatenate(parts, axis=0)


def hamming_distance_matrix(
    a: np.ndarray,
    b: np.ndarray | None = None,
    *,
    chunk_size: int = 4096,
    parallel=None,
) -> np.ndarray:
    """All-pairs Hamming distances between two sets of 64-bit hashes.

    This is the reproduction of the paper's Step 2 (the TensorFlow
    multi-GPU pairwise engine), reduced to chunked numpy broadcasting.
    Memory stays bounded at ``chunk_size * len(b) * 8`` bytes per chunk
    per worker.

    Parameters
    ----------
    a, b:
        1-D ``uint64`` arrays.  When ``b`` is omitted the matrix is
        ``a`` vs itself.
    chunk_size:
        Rows of ``a`` processed per broadcast step.
    parallel:
        Optional :class:`repro.utils.parallel.ParallelConfig`; rows of
        ``a`` are sharded across workers and reassembled in order, so
        the result is identical to the serial computation.  A config
        carrying a :class:`repro.utils.parallel.CostModel` routes
        through cost-model dispatch first (the model may pick serial
        for call sizes where fan-out loses, as BENCH_parallel.json
        measured for process workers shipping dense matrices back).

    Returns
    -------
    numpy.ndarray
        ``(len(a), len(b))`` matrix of ``int64`` distances.
    """
    from repro.utils import compiled
    from repro.utils.parallel import (
        Executor,
        array_splitter,
        kernel_timer,
        resolve_parallel,
        shard_bounds,
        strict_supervision,
    )
    from repro.utils.shm import shared_inputs

    a = np.ascontiguousarray(a, dtype=np.uint64)
    b = a if b is None else np.ascontiguousarray(b, dtype=np.uint64)
    units = int(a.size) * int(b.size)
    kernel = compiled.kernel_variant("hamming_distance_matrix")
    parallel = resolve_parallel(parallel).dispatched(kernel, units)
    if parallel.is_serial or a.size < parallel.workers * 2:
        with kernel_timer(parallel, kernel, units, backend="serial"):
            return _matrix_rows(a, b, chunk_size)
    with kernel_timer(parallel, kernel, units):
        # Under the shm transport both operands are published once and
        # shards carry window descriptors; otherwise the arrays pass
        # through untouched and each task pickles its slice as before.
        with shared_inputs(parallel, a, b) as (a_src, b_src):
            sup = Executor(parallel).supervised_starmap(
                _matrix_rows,
                [
                    (a_src[start:stop], b_src, chunk_size)
                    for start, stop in shard_bounds(a.size, parallel)
                ],
                policy=strict_supervision(parallel),
                split=array_splitter(0),
                merge=_merge_matrix_rows,
            )
            return np.concatenate(sup.results, axis=0)
