"""Shared low-level utilities: seeded RNG plumbing, bit operations, tables.

These helpers are deliberately dependency-light; every other subpackage of
:mod:`repro` builds on them.
"""

from repro.utils.bitops import (
    flip_random_bits,
    hamming_distance,
    hamming_distance_matrix,
    hamming_to_many,
    pack_bits,
    popcount,
    unpack_bits,
)
from repro.utils.io import (
    CheckpointError,
    StaleCheckpointError,
    export_occurrences_csv,
    load_checkpoint,
    load_posts,
    save_checkpoint,
    save_posts,
)
from repro.utils.parallel import (
    Executor,
    ParallelConfig,
    parallel_map,
    parallel_starmap,
    resolve_parallel,
    shard_bounds,
)
from repro.utils.retry import RetryOutcome, RetryPolicy, TransientError, retry_call
from repro.utils.rng import RngStream, derive_rng
from repro.utils.svgplot import LineChart, Series
from repro.utils.tables import format_table, print_table

__all__ = [
    "RngStream",
    "derive_rng",
    "pack_bits",
    "unpack_bits",
    "popcount",
    "hamming_distance",
    "hamming_to_many",
    "hamming_distance_matrix",
    "format_table",
    "print_table",
    "flip_random_bits",
    "save_posts",
    "load_posts",
    "export_occurrences_csv",
    "CheckpointError",
    "StaleCheckpointError",
    "save_checkpoint",
    "load_checkpoint",
    "Executor",
    "ParallelConfig",
    "parallel_map",
    "parallel_starmap",
    "resolve_parallel",
    "shard_bounds",
    "RetryPolicy",
    "RetryOutcome",
    "TransientError",
    "retry_call",
    "LineChart",
    "Series",
]
