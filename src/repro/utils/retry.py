"""Retry with exponential backoff for transient stage failures.

The staged runner (:mod:`repro.core.runner`) distinguishes *transient*
failures — worth retrying with backoff, e.g. an interrupted I/O path or
an injected :class:`TransientError` — from *permanent* ones that should
flow into the degradation/quarantine machinery immediately.  This module
holds the policy and the generic retry loop; it knows nothing about
pipeline stages.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, TypeVar

__all__ = ["RetryPolicy", "RetryOutcome", "TransientError", "retry_call"]

T = TypeVar("T")


class TransientError(RuntimeError):
    """A failure expected to succeed on retry (timeouts, flaky I/O)."""


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry and how long to back off.

    Attributes
    ----------
    max_retries:
        Retries *after* the first attempt (0 disables retrying).
    base_delay:
        Sleep before the first retry, in seconds.
    backoff:
        Multiplier applied to the delay after each failed retry.
    max_delay:
        Upper bound on any single sleep.
    retryable:
        Exception types considered transient.  Anything else propagates
        to the caller on the first failure.
    """

    max_retries: int = 2
    base_delay: float = 0.05
    backoff: float = 2.0
    max_delay: float = 5.0
    retryable: tuple[type[BaseException], ...] = (TransientError, OSError)

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")

    def delay_for(self, retry_index: int) -> float:
        """Backoff before retry ``retry_index`` (0-based)."""
        return min(self.base_delay * self.backoff**retry_index, self.max_delay)


@dataclass
class RetryOutcome:
    """What the retry loop observed: attempts made and errors swallowed."""

    value: object = None
    attempts: int = 0
    errors: list[str] = field(default_factory=list)


def retry_call(
    fn: Callable[[], T],
    policy: RetryPolicy | None = None,
    *,
    sleep: Callable[[float], None] | None = None,
    on_retry: Callable[[int, BaseException], None] | None = None,
) -> RetryOutcome:
    """Call ``fn`` under ``policy``, returning value + attempt bookkeeping.

    Transient exceptions (per ``policy.retryable``) are retried up to
    ``policy.max_retries`` times with exponential backoff; the last one
    re-raises if every attempt fails.  Non-transient exceptions propagate
    immediately.  ``sleep`` is injectable so tests never actually wait.
    """
    policy = policy or RetryPolicy()
    sleep = time.sleep if sleep is None else sleep
    outcome = RetryOutcome()
    for retry_index in range(policy.max_retries + 1):
        outcome.attempts += 1
        try:
            outcome.value = fn()
            return outcome
        except policy.retryable as error:
            outcome.errors.append(f"{type(error).__name__}: {error}")
            if retry_index == policy.max_retries:
                raise
            if on_retry is not None:
                on_retry(retry_index, error)
            sleep(policy.delay_for(retry_index))
    raise AssertionError("unreachable")  # pragma: no cover
