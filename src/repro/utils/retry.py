"""Retry with exponential backoff for transient stage failures.

The staged runner (:mod:`repro.core.runner`) distinguishes *transient*
failures — worth retrying with backoff, e.g. an interrupted I/O path or
an injected :class:`TransientError` — from *permanent* ones that should
flow into the degradation/quarantine machinery immediately.  This module
holds the policy and the generic retry loop; it knows nothing about
pipeline stages.

The online serving layer (:mod:`repro.service`) adds two requirements on
top of the batch runner's needs, both supported here:

* **Jitter** — many concurrent requests retrying a shared dependency
  must not synchronise their backoff into thundering herds.
  ``RetryPolicy(jitter="full")`` draws each delay uniformly from
  ``[0, exponential delay]`` (AWS-style *full jitter*) from an
  **injected** rng, so tests and replays are deterministic under a
  fixed seed — there is no hidden global random state.
* **Deadlines** — an online request has a latency budget; retrying past
  it wastes capacity on an answer nobody is waiting for.
  :func:`retry_call` takes an optional absolute ``deadline`` (on the
  injected ``clock``) and raises :class:`DeadlineExceeded` instead of
  sleeping past it; sleeps are capped to the remaining budget.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, TypeVar

__all__ = [
    "RetryPolicy",
    "RetryOutcome",
    "TransientError",
    "DeadlineExceeded",
    "retry_call",
]

T = TypeVar("T")

JITTER_MODES = ("none", "full")


class TransientError(RuntimeError):
    """A failure expected to succeed on retry (timeouts, flaky I/O)."""


class DeadlineExceeded(RuntimeError):
    """The retry loop ran out of deadline budget before succeeding.

    Raised by :func:`retry_call` when a transient failure would require
    backing off past the caller's deadline.  The triggering error is
    chained as ``__cause__``.
    """


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry and how long to back off.

    Attributes
    ----------
    max_retries:
        Retries *after* the first attempt (0 disables retrying).
    base_delay:
        Sleep before the first retry, in seconds.
    backoff:
        Multiplier applied to the delay after each failed retry.
    max_delay:
        Upper bound on any single sleep.
    retryable:
        Exception types considered transient.  Anything else propagates
        to the caller on the first failure.
    jitter:
        ``"none"`` (default) keeps the classic deterministic exponential
        schedule; ``"full"`` draws each delay uniformly from
        ``[0, exponential delay]`` using the rng injected into
        :meth:`delay_for` / :func:`retry_call` — never global random
        state, so a fixed seed reproduces the exact schedule.
    """

    max_retries: int = 2
    base_delay: float = 0.05
    backoff: float = 2.0
    max_delay: float = 5.0
    retryable: tuple[type[BaseException], ...] = (TransientError, OSError)
    jitter: str = "none"

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if self.jitter not in JITTER_MODES:
            raise ValueError(
                f"jitter must be one of {JITTER_MODES}, got {self.jitter!r}"
            )

    def delay_for(self, retry_index: int, *, rng=None) -> float:
        """Backoff before retry ``retry_index`` (0-based).

        With ``jitter="full"`` an rng (``numpy.random.Generator`` or
        anything with ``uniform(low, high)``) is required and the delay
        is drawn from ``[0, exponential delay]``.
        """
        ceiling = min(self.base_delay * self.backoff**retry_index, self.max_delay)
        if self.jitter == "none":
            return ceiling
        if rng is None:
            raise ValueError("jitter='full' requires an injected rng")
        return float(rng.uniform(0.0, ceiling))


@dataclass
class RetryOutcome:
    """What the retry loop observed: attempts made and errors swallowed."""

    value: object = None
    attempts: int = 0
    errors: list[str] = field(default_factory=list)


def retry_call(
    fn: Callable[[], T],
    policy: RetryPolicy | None = None,
    *,
    sleep: Callable[[float], None] | None = None,
    on_retry: Callable[[int, BaseException], None] | None = None,
    rng=None,
    deadline: float | None = None,
    clock: Callable[[], float] | None = None,
) -> RetryOutcome:
    """Call ``fn`` under ``policy``, returning value + attempt bookkeeping.

    Transient exceptions (per ``policy.retryable``) are retried up to
    ``policy.max_retries`` times with exponential backoff; the last one
    re-raises if every attempt fails.  Non-transient exceptions propagate
    immediately.  ``sleep`` is injectable so tests never actually wait.

    ``rng`` feeds jittered policies (see :class:`RetryPolicy.jitter`).

    ``deadline`` is an *absolute* time on ``clock`` (default
    ``time.monotonic``).  After a transient failure, if the deadline has
    passed — or only :class:`DeadlineExceeded` could result from waiting,
    because zero budget remains — the loop raises
    :class:`DeadlineExceeded` from the triggering error instead of
    sleeping.  Otherwise the backoff sleep is capped to the remaining
    budget, so the next attempt starts within the deadline.
    """
    policy = policy or RetryPolicy()
    sleep = time.sleep if sleep is None else sleep
    clock = time.monotonic if clock is None else clock
    outcome = RetryOutcome()
    for retry_index in range(policy.max_retries + 1):
        outcome.attempts += 1
        try:
            outcome.value = fn()
            return outcome
        except policy.retryable as error:
            if isinstance(error, (KeyboardInterrupt, SystemExit)):
                # Never retry an interpreter-exit request, no matter how
                # broad the policy's retryable tuple is (supervised
                # parallel execution retries bare (Exception,), and a
                # custom tuple could even name BaseException): swallowing
                # Ctrl-C to re-run the failing call would make shutdown
                # unresponsive.
                raise
            outcome.errors.append(f"{type(error).__name__}: {error}")
            if retry_index == policy.max_retries:
                raise
            delay = policy.delay_for(retry_index, rng=rng)
            if deadline is not None:
                remaining = deadline - clock()
                if remaining <= 0:
                    raise DeadlineExceeded(
                        f"deadline passed after {outcome.attempts} attempts"
                    ) from error
                delay = min(delay, remaining)
            if on_retry is not None:
                on_retry(retry_index, error)
            sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover
