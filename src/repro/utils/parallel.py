"""Parallel execution layer for the pipeline's hot paths.

The paper ran its all-pairs comparisons and per-cluster Hawkes fits on a
two-GPU TensorFlow rig; the laptop-scale reproduction instead shards its
embarrassingly-parallel hot paths — radius neighbourhoods, Hamming
matrix rows, per-community association, per-cluster fits — over a small
executor abstraction with three interchangeable backends:

* ``serial`` — a plain loop in the calling thread.  The default, and
  the reference semantics every other backend must reproduce.
* ``thread`` — a :class:`~concurrent.futures.ThreadPoolExecutor`.
  Effective for numpy-heavy work that releases the GIL; zero
  serialisation cost.
* ``process`` — a :class:`~concurrent.futures.ProcessPoolExecutor`.
  Work items are pickled to the workers, so hot paths hand over compact
  numpy shards (a ``uint64`` hash array plus a query range) rather than
  live index objects; worker functions must be module-level.

**Determinism guarantee.** Results are returned in *submission* order
regardless of completion order (futures are collected in order, never
``as_completed``), and every shard kernel produces output identical to
the serial path.  ``--workers N`` therefore changes wall time, never
results; the property tests in ``tests/test_parallel_identity.py`` pin
this bit-for-bit.

Configuration resolves in three steps: an explicit
:class:`ParallelConfig` wins; otherwise the ``REPRO_WORKERS`` /
``REPRO_PARALLEL_BACKEND`` environment variables apply (this is how CI
runs the whole tier-1 suite under 2 workers); otherwise everything runs
serially, bit-identical to the historical single-core behaviour.

**Supervised execution.** Plain :meth:`Executor.starmap` keeps serial
failure semantics: the first worker exception aborts the whole fan-out.
At the paper's scale (160M images, 12.6K cluster fits) that is
operationally unacceptable — a hung worker stalls the run forever and a
single poison shard costs hours of recomputation.
:meth:`Executor.supervised_starmap` wraps the same fan-out in a
supervision ladder, per shard:

1. **deadline** — futures are polled with timeouts, never blocking
   ``result()``; a shard past ``SupervisionPolicy.shard_deadline_s`` is
   declared hung and handed to the rescue ladder (pool backends only —
   a serial shard cannot be preempted);
2. **retry** — the failed shard is re-submitted to a *fresh* pool under
   a :class:`repro.utils.retry.RetryPolicy` (worker-death via
   ``BrokenExecutor`` is just another retryable failure);
3. **replica failover** — when the caller supplies ``alternates``
   (replacement argument tuples carrying an identical copy of the
   shard's data — the replicated index cluster's replicas), each
   alternate walks the retry rung in turn.  A hung or dead replica is
   thereby *hedged* onto its twin instead of being hammered further;
   because replicas are bit-identical copies, the result is too;
4. **bisection re-sharding** — a shard that keeps failing is split via
   the caller's ``split`` function and each half walks the ladder
   independently, so one poison item cannot sink its whole shard and an
   allocation-bound failure gets a smaller working set;
5. **serial fallback** — the shard runs in the calling process,
   sidestepping pool pathologies (pickling, worker death) entirely;
6. **quarantine** — a shard that fails even serially is *poison*:
   depending on ``on_poison`` the run either fails fast
   (:class:`PoisonShardError`, naming the shard) or records the shard
   as a gap (``None`` in the result list) and carries on.

Every shard's history (attempts, backend, duration, outcome, error
trail) lands in a :class:`ShardReport`; the whole fan-out aggregates
into an :class:`ExecutionReport` that callers can inspect and the
staged runner threads into its ``StageReport``s.  Salvaged results stay
submission-ordered and bit-identical to serial for every surviving
shard; quarantined shards surface as explicit gaps, never silent
truncation.

Chaos hooks: the executor consults an optional ``chaos(site)`` callable
(``"parallel:shard"`` then ``"parallel:worker"`` by default; the
replicated index cluster passes ``chaos_sites=("index:shard",
"index:replica")`` so its drills do not collide with generic parallel
faults) before every shard attempt.  :meth:`repro.core.faults.FaultInjector.parallel_directive`
implements the hook — raise-type faults raise right there in the
parent, while ``hang``/``kill`` faults return a :class:`ChaosDirective`
that ships into the worker (sleep past the deadline / ``os._exit``),
so hang detection and worker-death recovery are testable end to end.

**Cost-model dispatch.** ``BENCH_parallel.json`` caught two hot paths
where unconditional fan-out was *slower* than serial
(``hamming_distance_matrix`` 0.07x under process workers — pickling a
dense matrix back dwarfs the compute; ``associate_hashes`` 0.94x) on a
host whose ``os.cpu_count()`` was below the requested worker count.
:class:`CostModel` fixes both failure classes: it caps effective
workers at the host's core count (oversubscribed CPU-bound fan-outs
cannot win) and keeps a small per-kernel throughput calibration
(units/second per backend, EWMA over observed runs, JSON-persisted in
the cache directory) from which it estimates serial vs thread vs
process wall time per call and dispatches the cheapest.  The model is
strictly opt-in — ``ParallelConfig.cost_model`` is ``None`` unless a
caller (the CLI's ``--cost-dispatch``, the benchmarks) attaches one —
so supervised-execution semantics and chaos drills are untouched by
default, and dispatch changes only wall time, never results (a
dispatched-to-serial kernel runs the identical serial code path).
"""

from __future__ import annotations

import atexit
import json
import math
import os
import platform
import tempfile
import threading
import time
import warnings
from concurrent import futures as _futures
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Iterable, Sequence, TypeVar

from repro.utils.retry import RetryPolicy, retry_call

__all__ = [
    "BACKENDS",
    "ENV_BACKEND",
    "ENV_TRANSPORT",
    "ENV_WORKERS",
    "ChaosDirective",
    "CostModel",
    "DEFAULT_CHAOS_SITES",
    "ExecutionReport",
    "Executor",
    "ParallelConfig",
    "PoisonShardError",
    "ShardReport",
    "SupervisedResult",
    "SupervisionPolicy",
    "TRANSPORTS",
    "WorkerPool",
    "array_splitter",
    "available_cpus",
    "effective_workers",
    "get_worker_pool",
    "host_fingerprint",
    "kernel_timer",
    "parallel_map",
    "parallel_starmap",
    "range_splitter",
    "resolve_parallel",
    "shard_bounds",
    "strict_supervision",
    "warn_if_oversubscribed",
]

T = TypeVar("T")
R = TypeVar("R")

BACKENDS = ("auto", "serial", "thread", "process", "process_shm")

TRANSPORTS = ("pickle", "shm")

ENV_WORKERS = "REPRO_WORKERS"
ENV_BACKEND = "REPRO_PARALLEL_BACKEND"
ENV_TRANSPORT = "REPRO_TRANSPORT"


def _visible_cpus() -> int | None:
    """Affinity-aware CPU count, or ``None`` when unknowable."""
    getaffinity = getattr(os, "sched_getaffinity", None)
    if getaffinity is not None:
        try:
            affinity = len(getaffinity(0))
            if affinity > 0:
                return affinity
        except OSError:
            pass
    return os.cpu_count()


def available_cpus() -> int:
    """CPUs this *process* may actually run on.

    ``os.cpu_count()`` reports the machine's cores and ignores cgroup
    and affinity limits — in a container pinned to 2 of 64 cores it
    says 64, so worker clamping caps at 64 and dispatch happily picks
    fan-outs that cannot win.  The scheduler affinity mask is the
    truth on Linux; platforms without it fall back to the core count,
    and a host where neither is knowable counts as 1.
    """
    return _visible_cpus() or 1


def effective_workers(workers: int) -> int:
    """Workers that can actually run concurrently on this host.

    CPU-bound kernels (everything in this codebase) gain nothing from
    more workers than cores; process workers *lose* (extra pickling and
    context switching for zero extra parallelism).  "Cores" means the
    affinity-aware :func:`available_cpus`, not the raw machine count;
    when neither source knows, the requested count stands.
    """
    workers = int(workers)
    return max(1, min(workers, _visible_cpus() or workers))


def warn_if_oversubscribed(workers: int, *, source: str) -> int:
    """Warn when a requested worker count exceeds :func:`available_cpus`.

    BENCH_parallel.json once recorded ``workers=4`` on a
    ``cpu_count=1`` host with sub-1x "speedups" and no signal of why;
    this surfaces the oversubscription as a :class:`RuntimeWarning` at
    configuration time.  Returns the effective (capped) worker count so
    callers can record it alongside the requested one.
    """
    cpu = _visible_cpus()
    if cpu is not None and workers > cpu:
        warnings.warn(
            f"{source} requests {workers} workers but this host has "
            f"{cpu} CPU(s); CPU-bound fan-outs cannot run more than "
            f"{cpu} shard(s) at once (effective parallelism {cpu})",
            RuntimeWarning,
            stacklevel=3,
        )
    return effective_workers(workers)


@dataclass(frozen=True)
class ParallelConfig:
    """How a hot path should fan out.

    Attributes
    ----------
    workers:
        Worker count; 1 means serial execution (the default).
    backend:
        ``"serial"``, ``"thread"``, ``"process"``, ``"process_shm"``,
        or ``"auto"`` (serial when ``workers == 1``, otherwise process
        — the only backend family that sidesteps the GIL for
        pure-Python kernels).  ``"process_shm"`` is the process backend
        on the zero-copy transport: shard inputs travel as
        shared-memory descriptors through a persistent warm worker
        pool instead of being pickled to a per-call pool.
    transport:
        ``"pickle"`` (the default: arguments pickled per task) or
        ``"shm"``.  Selecting ``"shm"`` upgrades a resolved ``process``
        backend to ``process_shm``; serial and thread execution ignore
        it (they already share the caller's address space).
    chunk_size:
        Items per shard for :func:`shard_bounds`; ``None`` applies the
        heuristic (one large shard per process worker to amortise
        pickling, four smaller shards per thread worker for load
        balancing).
    supervision:
        Optional :class:`SupervisionPolicy` the hot paths apply to
        their supervised fan-outs.  ``None`` means each call site's
        default policy.  Carried here so it travels wherever the
        parallel config already flows (runner → dbscan →
        ``radius_neighbors``) without new plumbing.
    chaos:
        Optional chaos hook ``(site: str) -> ChaosDirective | None``
        consulted before every supervised shard attempt; see
        :meth:`repro.core.faults.FaultInjector.parallel_directive`.
        Test/drill only; never pickled to workers.
    cost_model:
        Optional :class:`CostModel`.  When set, kernel call sites route
        through :meth:`dispatched` before fanning out, letting the
        model pick serial/thread/process per call and cap workers at
        the core count.  ``None`` (the default, including via
        :meth:`from_env`) keeps the historical unconditional fan-out.
    shards:
        Optional :class:`repro.index_cluster.ShardConfig`.  When set,
        ``radius_neighbors`` / ``associate_hashes`` route through the
        replicated sharded index cluster instead of the monolithic
        index — results stay bit-identical, only placement and failure
        tolerance change.  ``None`` (the default) keeps the monolith.
        Carried here so sharding travels wherever the parallel config
        already flows, like :attr:`supervision`.
    """

    workers: int = 1
    backend: str = "auto"
    chunk_size: int | None = None
    supervision: "SupervisionPolicy | None" = None
    chaos: Callable[[str], "ChaosDirective | None"] | None = None
    cost_model: "CostModel | None" = None
    shards: object | None = None
    transport: str = "pickle"

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {self.transport!r}; "
                f"expected one of {TRANSPORTS}"
            )

    def resolved_backend(self) -> str:
        """The concrete backend after ``auto``/transport resolution."""
        backend = self.backend
        if backend == "auto":
            backend = "serial" if self.workers <= 1 else "process"
        if backend == "process" and self.transport == "shm":
            return "process_shm"
        return backend

    @property
    def is_serial(self) -> bool:
        """True when execution degenerates to a plain loop."""
        return self.workers <= 1 or self.resolved_backend() == "serial"

    @property
    def uses_shm(self) -> bool:
        """True when fan-out inputs should travel as shared memory."""
        return self.resolved_backend() == "process_shm"

    def dispatched(self, kernel: str, units: int) -> "ParallelConfig":
        """The effective config for one kernel call of ``units`` work.

        With no :attr:`cost_model` (the default) this is the identity —
        call sites behave exactly as before.  With one, the model picks
        the cheapest backend for this call size and caps workers at the
        host's core count; the result is bit-identical either way, only
        wall time changes.
        """
        if self.cost_model is None or self.is_serial:
            return self
        return self.cost_model.choose(kernel, int(units), self)

    @classmethod
    def from_env(cls, env=None) -> "ParallelConfig":
        """Config from ``REPRO_WORKERS`` / ``REPRO_PARALLEL_BACKEND``.

        Unset or malformed variables fall back to the serial default, so
        library behaviour never changes unless explicitly requested —
        but a *malformed* value is an operator error worth surfacing, so
        it emits a :class:`RuntimeWarning` naming the bad value instead
        of being silently swallowed.
        """
        env = os.environ if env is None else env
        raw_workers = env.get(ENV_WORKERS, "")
        try:
            workers = int(raw_workers or 1)
        except ValueError:
            warnings.warn(
                f"ignoring malformed {ENV_WORKERS}={raw_workers!r} "
                "(not an integer); falling back to serial (workers=1)",
                RuntimeWarning,
                stacklevel=2,
            )
            workers = 1
        backend = env.get(ENV_BACKEND, "") or "auto"
        if backend not in BACKENDS:
            warnings.warn(
                f"ignoring malformed {ENV_BACKEND}={backend!r}; expected "
                f"one of {BACKENDS}; falling back to 'auto'",
                RuntimeWarning,
                stacklevel=2,
            )
            backend = "auto"
        transport = env.get(ENV_TRANSPORT, "") or "pickle"
        if transport not in TRANSPORTS:
            warnings.warn(
                f"ignoring malformed {ENV_TRANSPORT}={transport!r}; "
                f"expected one of {TRANSPORTS}; falling back to 'pickle'",
                RuntimeWarning,
                stacklevel=2,
            )
            transport = "pickle"
        workers = max(1, workers)
        if workers > 1:
            warn_if_oversubscribed(workers, source=ENV_WORKERS)
        # Imported lazily: placement is import-light and never imports
        # this module, so no cycle — but keeping it out of module scope
        # means plain parallel users never touch the index cluster.
        from repro.index_cluster.placement import shard_config_from_env

        shards = shard_config_from_env(env)
        return cls(
            workers=workers,
            backend=backend,
            shards=shards,
            transport=transport,
        )


def resolve_parallel(parallel: ParallelConfig | None) -> ParallelConfig:
    """An explicit config wins; ``None`` falls back to the environment."""
    return ParallelConfig.from_env() if parallel is None else parallel


def shard_bounds(
    n_items: int, parallel: ParallelConfig
) -> list[tuple[int, int]]:
    """Contiguous ``(start, stop)`` shards covering ``range(n_items)``.

    Chunk size follows the backend heuristic unless the config pins one:
    pickle-transport process shards are worker-sized (each task ships a
    pickled numpy shard, so fewer/larger is cheaper); thread, serial,
    and ``process_shm`` shards are a quarter of that (finer grain
    smooths uneven per-item cost, and shared-memory tasks ship only a
    descriptor, so extra shards cost nothing to transport).
    """
    if n_items <= 0:
        return []
    if parallel.chunk_size is not None:
        size = parallel.chunk_size
    else:
        oversubscribe = 1 if parallel.resolved_backend() == "process" else 4
        size = max(1, -(-n_items // (parallel.workers * oversubscribe)))
    return [
        (start, min(start + size, n_items))
        for start in range(0, n_items, size)
    ]


# ----------------------------------------------------------------------
# Warm worker pool (process_shm backend)
# ----------------------------------------------------------------------


class WorkerPool:
    """A persistent process pool reused across fan-outs.

    The pickle-transport process backend spawns a fresh
    :class:`ProcessPoolExecutor` per fan-out — ~0.35 s of fork cost on
    every call (the ``process`` entry in the cost model's default
    overheads).  The ``process_shm`` backend instead checks its pool
    out of this keeper, runs the fan-out, and checks it back in
    *clean*: the next fan-out reuses the warm workers for near-zero
    marginal overhead.

    A *dirty* return (a shard hung, a worker died, the pool broke)
    discards the pool without joining its workers — exactly the
    shutdown discipline the supervised first wave already applies —
    and the next checkout spawns a fresh one.  The supervision
    ladder's retry rungs keep using fresh single-worker pools, so a
    poisoned pool can never recycle into a rescue attempt.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pool: ProcessPoolExecutor | None = None
        self._workers = 0
        self.spawns = 0

    @property
    def warm(self) -> bool:
        """True when a checked-in pool is ready for instant reuse."""
        with self._lock:
            return self._pool is not None

    def acquire(self, workers: int) -> ProcessPoolExecutor:
        """Check out a pool with at least ``workers`` workers."""
        workers = max(1, int(workers))
        with self._lock:
            pool, self._pool = self._pool, None
            if pool is not None and self._workers >= workers:
                return pool
        if pool is not None:
            # Too small for this fan-out: replace rather than resize
            # (executors cannot grow) — rare, since callers clamp to
            # the same core count every time.
            pool.shutdown(wait=False, cancel_futures=True)
        fresh = ProcessPoolExecutor(max_workers=workers)
        with self._lock:
            self._workers = workers
            self.spawns += 1
        return fresh

    def release(self, pool: ProcessPoolExecutor, *, dirty: bool) -> None:
        """Check a pool back in; a dirty pool is discarded unjoined."""
        if dirty:
            pool.shutdown(wait=False, cancel_futures=True)
            return
        with self._lock:
            if self._pool is None:
                self._pool = pool
                return
        # Another thread already checked one in; keep theirs.
        pool.shutdown(wait=True)

    def discard(self) -> None:
        """Drop any checked-in pool (test isolation, interpreter exit)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)


_WORKER_POOL = WorkerPool()


def get_worker_pool() -> WorkerPool:
    """The process-wide warm pool behind the ``process_shm`` backend."""
    return _WORKER_POOL


@atexit.register
def _shutdown_worker_pool() -> None:  # pragma: no cover - exit path
    _WORKER_POOL.discard()


# ----------------------------------------------------------------------
# Cost-model dispatch
# ----------------------------------------------------------------------

# Fallback pool spawn+roundtrip cost when a backend was never measured
# on this host.  Process pools fork an interpreter per worker; thread
# pools are near-free.  Real measurements (calibrate_overhead) replace
# these.  ``process_shm`` pays the fork exactly once per run — after
# the warm pool exists its marginal overhead is a task submission.
_DEFAULT_POOL_OVERHEAD_S = {"thread": 0.005, "process": 0.35, "process_shm": 0.35}

# Marginal process_shm overhead once the warm pool is up: submit +
# descriptor pickle + attach-cached resolve, no fork, no array copy.
_WARM_POOL_OVERHEAD_S = 0.002


def host_fingerprint() -> dict:
    """Identity of the hardware/runtime a calibration was measured on.

    Persisted into ``cost_model.json`` and checked on load: throughput
    and pool-overhead numbers from a different machine (a 1-core CI
    runner writing into a shared cache dir, say) must never drive
    dispatch here.
    """
    return {
        "cpu_count": available_cpus(),
        "platform": platform.platform(),
        "python": platform.python_version(),
    }


def _positive_finite(value) -> float | None:
    """``value`` as a strictly positive finite float, else ``None``.

    The validation gate for every rate/overhead entering the model: a
    ``0.0`` rate divides by zero in ``estimate()``, a negative one
    inverts every comparison, and NaN/inf poison ``choose()``'s ``min``
    silently — so bad values are dropped at the door, whether they come
    from a corrupt ``cost_model.json`` or a pathological observation.
    """
    try:
        value = float(value)
    except (TypeError, ValueError):
        return None
    if not math.isfinite(value) or value <= 0.0:
        return None
    return value


def _noop() -> None:
    """Module-level no-op so process pools can pickle the probe task."""


class CostModel:
    """Per-kernel throughput calibration driving backend dispatch.

    The model keeps, per kernel name, an EWMA of observed throughput
    (``units``/second — each call site picks its own unit: matrix
    cells, queries, unique hashes) per backend, plus a measured
    pool-spawn overhead per backend.  :meth:`choose` estimates the wall
    time of serial vs thread vs process execution for a concrete call
    and returns the cheapest as a :class:`ParallelConfig`:

    * workers are always capped at ``cpu_count`` (oversubscribed
      CPU-bound fan-outs cannot win — see BENCH_parallel.json's 0.07x
      ``hamming_distance_matrix`` record from a 1-core host);
    * a backend with an observed rate uses it directly; an unobserved
      pool backend is modelled optimistically as ideal scaling of the
      serial rate plus spawn overhead, so dispatch only deviates from
      the requested config once evidence (or the core-count cap) says
      it should;
    * with no serial calibration at all, the requested config is kept
      (capped) — first calls observe, later calls dispatch.

    State persists as JSON (``path``), conventionally inside the
    content cache's directory, so calibration survives across runs
    like every other cached artefact.
    """

    def __init__(
        self,
        path: str | Path | None = None,
        *,
        cpu_count: int | None = None,
        ewma: float = 0.5,
    ) -> None:
        if not 0.0 < ewma <= 1.0:
            raise ValueError("ewma must be in (0, 1]")
        self.path = Path(path) if path is not None else None
        self.cpu_count = (
            int(cpu_count) if cpu_count is not None else available_cpus()
        )
        self.ewma = ewma
        self.host = host_fingerprint()
        self.rates: dict[str, dict[str, float]] = {}
        self.overheads: dict[str, float] = {}
        if self.path is not None and self.path.exists():
            self.load(self.path)

    # -- calibration ---------------------------------------------------

    def observe(
        self, kernel: str, backend: str, units: int, seconds: float
    ) -> None:
        """Record one observed run of ``kernel`` on ``backend``.

        Observations that would poison the model (non-positive or
        non-finite inputs, or a blended rate that leaves the positive
        finite range) are dropped — same gate as :meth:`load`.
        """
        if _positive_finite(units) is None or _positive_finite(seconds) is None:
            return
        rate = _positive_finite(units / seconds)
        if rate is None:
            return
        slot = self.rates.setdefault(kernel, {})
        previous = slot.get(backend)
        blended = (
            rate
            if previous is None
            else (1.0 - self.ewma) * previous + self.ewma * rate
        )
        blended = _positive_finite(blended)
        if blended is None:
            slot.pop(backend, None)
            return
        slot[backend] = blended

    def calibrate(self, kernel: str, fn: Callable[[], object], units: int):
        """Time one serial run of ``fn`` as the kernel's serial rate."""
        started = time.perf_counter()
        value = fn()
        self.observe(kernel, "serial", units, time.perf_counter() - started)
        return value

    def calibrate_overhead(self, backend: str, *, workers: int = 2) -> float:
        """Measure pool spawn + no-op roundtrip cost for ``backend``.

        For ``process_shm`` the measured quantity is the *marginal*
        cost — a no-op roundtrip through the warm pool (spawning it
        first if needed, so the fork is paid here rather than billed
        to every later estimate).
        """
        if backend not in ("thread", "process", "process_shm"):
            raise ValueError(f"no pool overhead for backend {backend!r}")
        if backend == "process_shm":
            keeper = get_worker_pool()
            pool = keeper.acquire(workers)
            try:
                pool.submit(_noop).result()  # ensure workers are up
                started = time.perf_counter()
                pool.submit(_noop).result()
                elapsed = time.perf_counter() - started
            except BaseException:
                keeper.release(pool, dirty=True)
                raise
            keeper.release(pool, dirty=False)
            self.overheads[backend] = elapsed
            return elapsed
        pool_cls = (
            ThreadPoolExecutor if backend == "thread" else ProcessPoolExecutor
        )
        started = time.perf_counter()
        with pool_cls(max_workers=workers) as pool:
            pool.submit(_noop).result()
        elapsed = time.perf_counter() - started
        self.overheads[backend] = elapsed
        return elapsed

    def pool_overhead(self, backend: str) -> float:
        if backend == "process_shm" and not get_worker_pool().warm:
            # Cold: the first fan-out pays the fork like plain process.
            return self.overheads.get(
                "process", _DEFAULT_POOL_OVERHEAD_S["process_shm"]
            )
        return self.overheads.get(
            backend,
            _WARM_POOL_OVERHEAD_S
            if backend == "process_shm"
            else _DEFAULT_POOL_OVERHEAD_S.get(backend, 0.1),
        )

    # -- estimation and dispatch ---------------------------------------

    def estimate(
        self, kernel: str, backend: str, units: int, workers: int
    ) -> float | None:
        """Estimated wall seconds, or ``None`` when unestimable."""
        slot = self.rates.get(kernel, {})
        if backend == "serial":
            rate = slot.get("serial")
            return None if rate is None else units / rate
        rate = slot.get(backend)
        if rate is not None:
            return self.pool_overhead(backend) + units / rate
        serial_rate = slot.get("serial")
        if serial_rate is None:
            return None
        # Unobserved pool backend: assume ideal scaling of the serial
        # rate (optimistic — dispatch keeps fan-outs unless overhead or
        # the core cap clearly dominates; observations then correct it).
        return self.pool_overhead(backend) + units / (
            serial_rate * max(1, workers)
        )

    def choose(
        self, kernel: str, units: int, parallel: "ParallelConfig"
    ) -> "ParallelConfig":
        """The cheapest config for one call of ``units`` work."""
        workers = max(1, min(parallel.workers, self.cpu_count))
        serial_config = replace(parallel, workers=1, backend="serial")
        if workers <= 1:
            return serial_config
        estimates: dict[str, float] = {}
        serial_estimate = self.estimate(kernel, "serial", units, 1)
        if serial_estimate is None:
            # Uncalibrated kernel: keep the requested behaviour, capped.
            if workers == parallel.workers:
                return parallel
            return replace(parallel, workers=workers)
        estimates["serial"] = serial_estimate
        # The shm transport replaces plain process fan-out rather than
        # competing with it, and a pickle-transport caller never gets
        # silently upgraded to shared memory — the candidate set tracks
        # the operator's transport choice.
        shm = (
            parallel.transport == "shm"
            or parallel.backend == "process_shm"
        )
        candidates = ("thread", "process_shm") if shm else ("thread", "process")
        for backend in candidates:
            estimate = self.estimate(kernel, backend, units, workers)
            if estimate is not None:
                estimates[backend] = estimate
        # Insertion order breaks ties: serial wins exact ties.
        best = min(estimates, key=estimates.get)
        if best == "serial":
            return serial_config
        return replace(parallel, workers=workers, backend=best)

    # -- persistence ---------------------------------------------------

    def to_json(self) -> dict:
        return {
            "version": 2,
            "cpu_count": self.cpu_count,
            "host": dict(self.host),
            "rates": {k: dict(v) for k, v in self.rates.items()},
            "overheads": dict(self.overheads),
        }

    def save(self, path: str | Path | None = None) -> None:
        """Atomically persist the calibration as JSON.

        Uses the same uniquely-named fsynced temp-file pattern as
        :func:`repro.utils.io.save_checkpoint`: the cost model lives in
        the *shared* cache directory, so two concurrent runs saving at
        once must never trample each other's temp file (a fixed-name
        ``.tmp`` sibling would let one writer rename the other's
        half-written file into place) and a crash mid-write must never
        leave a torn ``cost_model.json``.
        """
        target = Path(path) if path is not None else self.path
        if target is None:
            raise ValueError("no path to save the cost model to")
        target.parent.mkdir(parents=True, exist_ok=True)
        blob = json.dumps(self.to_json(), indent=2, sort_keys=True)
        fd, temp_name = tempfile.mkstemp(
            dir=target.parent, prefix=target.name + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(blob)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_name, target)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def load(self, path: str | Path) -> None:
        """Merge persisted calibration; malformed files are ignored
        (stale calibration only costs a re-observation, never an error).

        Two gates apply before anything merges:

        * **host check** — a file stamped with a different (or missing)
          :func:`host_fingerprint` is discarded whole: its numbers were
          measured on other hardware and would misdirect dispatch here;
        * **value check** — individual rate/overhead entries that are
          not strictly positive finite numbers are dropped, so a corrupt
          or hand-edited file can never feed ``estimate()`` a zero
          divisor or ``choose()`` a NaN.
        """
        try:
            data = json.loads(Path(path).read_text())
            if not isinstance(data, dict):
                return
            if data.get("host") != self.host:
                return
            rates = data.get("rates", {})
            overheads = data.get("overheads", {})
            if not isinstance(rates, dict) or not isinstance(overheads, dict):
                return
            for kernel, slot in rates.items():
                if not isinstance(slot, dict):
                    continue
                clean = {}
                for backend, rate in slot.items():
                    rate = _positive_finite(rate)
                    if rate is not None:
                        clean[str(backend)] = rate
                if clean:
                    self.rates.setdefault(str(kernel), {}).update(clean)
            for backend, overhead in overheads.items():
                overhead = _positive_finite(overhead)
                if overhead is not None:
                    self.overheads[str(backend)] = overhead
        except (OSError, ValueError, TypeError):
            return


class _KernelTimer:
    """Times a kernel call and feeds the observation into a cost model."""

    def __init__(self, cost_model, kernel: str, backend: str, units: int):
        self._cost_model = cost_model
        self._kernel = kernel
        self._backend = backend
        self._units = units
        self._started = 0.0

    def __enter__(self) -> "_KernelTimer":
        if self._cost_model is not None:
            self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._cost_model is not None and exc_type is None:
            self._cost_model.observe(
                self._kernel,
                self._backend,
                self._units,
                time.perf_counter() - self._started,
            )


def kernel_timer(
    parallel: "ParallelConfig",
    kernel: str,
    units: int,
    *,
    backend: str | None = None,
):
    """Context manager observing one kernel run into ``parallel``'s cost
    model; a zero-cost no-op when the config carries none.  ``backend``
    overrides the observed label for call sites whose small-input guard
    runs serially under a pool config."""
    return _KernelTimer(
        parallel.cost_model,
        kernel,
        backend if backend is not None else parallel.resolved_backend(),
        units,
    )


# ----------------------------------------------------------------------
# Supervision: policies, reports, chaos plumbing
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class ChaosDirective:
    """Worker-side chaos a hook asks the executor to inject.

    ``action="hang"`` makes the worker sleep ``delay_s`` before
    computing (stalling past a shard deadline when ``delay_s`` exceeds
    it); ``action="kill"`` makes a process worker ``os._exit`` —
    breaking the whole pool, exactly like an OOM-killed worker — and
    degrades to a raised ``RuntimeError`` on thread/serial backends
    where killing the worker would kill the interpreter.
    """

    action: str
    delay_s: float = 0.25

    def __post_init__(self) -> None:
        if self.action not in ("hang", "kill"):
            raise ValueError(f"unknown chaos action {self.action!r}")


class PoisonShardError(RuntimeError):
    """A shard failed the entire supervision ladder under ``on_poison="fail"``.

    Carries the shard's submission index and the :class:`ExecutionReport`
    so far; the final underlying error is chained as ``__cause__``.
    """

    def __init__(
        self, shard_index: int, cause: BaseException, report: "ExecutionReport"
    ) -> None:
        super().__init__(
            f"shard {shard_index} failed permanently after the supervision "
            f"ladder (retry, replica failover, bisect, serial fallback): "
            f"{type(cause).__name__}: {cause}"
        )
        self.shard_index = shard_index
        self.report = report


@dataclass(frozen=True)
class SupervisionPolicy:
    """How :meth:`Executor.supervised_starmap` handles failing shards.

    Attributes
    ----------
    shard_deadline_s:
        Per-shard deadline in seconds; a shard whose future has not
        resolved within it is declared hung and rescued.  ``None``
        disables hang detection.  The clock for shard *i* starts once
        every earlier shard has been collected, so a deep queue behind
        one slow worker does not mass-expire.
    retry:
        :class:`repro.utils.retry.RetryPolicy` of the fresh-pool retry
        rung.  ``retryable`` defaults to ``(Exception,)`` because *any*
        shard failure — hang timeout, worker death, a raising kernel —
        deserves the ladder; ``KeyboardInterrupt``/``SystemExit`` are
        never retried regardless.
    bisect:
        Whether a still-failing shard is split via the caller's
        ``split`` function and each half retried independently.
    max_bisect_depth:
        Recursion bound on bisection (2 → a shard shrinks at most 4×),
        capping the worst-case attempt count on deterministic poison.
    serial_fallback:
        Whether the last rung runs the shard in the calling process.
    on_poison:
        ``"fail"`` raises :class:`PoisonShardError` at the first shard
        that exhausts the ladder; ``"quarantine"`` records a gap
        (``None`` result) and keeps going.
    """

    shard_deadline_s: float | None = None
    retry: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            max_retries=1, base_delay=0.01, retryable=(Exception,)
        )
    )
    bisect: bool = True
    max_bisect_depth: int = 2
    serial_fallback: bool = True
    on_poison: str = "quarantine"

    def __post_init__(self) -> None:
        if self.shard_deadline_s is not None and self.shard_deadline_s <= 0:
            raise ValueError("shard_deadline_s must be positive")
        if self.max_bisect_depth < 0:
            raise ValueError("max_bisect_depth must be >= 0")
        if self.on_poison not in ("fail", "quarantine"):
            raise ValueError(
                f"on_poison must be 'fail' or 'quarantine', got {self.on_poison!r}"
            )


@dataclass
class ShardReport:
    """Supervision history of one submitted shard.

    ``outcome`` is the final classification: ``"ok"`` (first attempt),
    ``"retried"`` (fresh-pool retry rung), ``"replica"`` (failed over
    to an alternate argument set — a replica copy of the shard's
    data; ``replica`` records which one, 1-based), ``"bisected"``
    (recovered by re-sharding), ``"serial"`` (serial fallback),
    ``"quarantined"`` (poison; its result slot is a gap).  ``errors``
    is the chronological trail of everything that went wrong on the
    way.
    """

    index: int
    backend: str = "serial"
    attempts: int = 0
    outcome: str = "pending"
    duration_s: float = 0.0
    replica: int = 0
    errors: list[str] = field(default_factory=list)

    @property
    def recovered(self) -> bool:
        """Failed at least once but produced its result anyway."""
        return self.outcome in ("retried", "replica", "bisected", "serial")


@dataclass
class ExecutionReport:
    """Aggregate of one supervised fan-out, one :class:`ShardReport` each."""

    backend: str
    workers: int
    shards: list[ShardReport] = field(default_factory=list)

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def retried(self) -> list[int]:
        """Indices of shards that failed at least once but recovered."""
        return [s.index for s in self.shards if s.recovered]

    @property
    def quarantined(self) -> list[int]:
        """Indices of poison shards whose result slot is a gap."""
        return [s.index for s in self.shards if s.outcome == "quarantined"]

    @property
    def complete(self) -> bool:
        return not self.quarantined

    def outcome_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for shard in self.shards:
            counts[shard.outcome] = counts.get(shard.outcome, 0) + 1
        return counts

    def summary(self) -> str:
        """One-line digest, e.g. ``process x4: 9 shards (ok=8 retried=1)``."""
        counts = " ".join(
            f"{outcome}={n}" for outcome, n in sorted(self.outcome_counts().items())
        )
        return f"{self.backend} x{self.workers}: {self.n_shards} shards ({counts})"


@dataclass
class SupervisedResult:
    """What a supervised fan-out produced: results (with gaps) + report.

    ``results[i]`` is shard *i*'s value, or ``None`` when the shard was
    quarantined (``report.quarantined`` lists exactly those indices —
    gaps are always explicit, never silently dropped).
    """

    results: list
    report: ExecutionReport

    @property
    def complete(self) -> bool:
        return self.report.complete


def strict_supervision(parallel: ParallelConfig) -> SupervisionPolicy:
    """The effective policy for gap-intolerant kernel call sites.

    Array kernels (Hamming matrix rows, neighbour lists, association
    columns) have no way to represent a quarantined shard — a hole in
    the output array is structurally meaningless — so they run the full
    rescue ladder but force ``on_poison="fail"``: true poison raises
    :class:`PoisonShardError` for the *caller's* quarantine machinery
    (e.g. the staged runner's per-community quarantine) to absorb at a
    granularity where a gap means something.
    """
    policy = parallel.supervision or SupervisionPolicy()
    return replace(policy, on_poison="fail")


def range_splitter(start_pos: int, stop_pos: int):
    """Bisect a ``(.., start, .., stop, ..)`` range call at its midpoint.

    For shard kernels of the form ``fn(data, start, stop, ...)`` whose
    output for ``start:stop`` equals the concatenation of the outputs
    for ``start:mid`` and ``mid:stop``.  Returns ``None`` for
    single-item (unsplittable) ranges.
    """

    def split(args: tuple) -> list[tuple] | None:
        start, stop = args[start_pos], args[stop_pos]
        if stop - start <= 1:
            return None
        mid = (start + stop) // 2
        left, right = list(args), list(args)
        left[stop_pos] = mid
        right[start_pos] = mid
        return [tuple(left), tuple(right)]

    return split


def array_splitter(pos: int = 0):
    """Bisect the sliceable argument at ``pos`` (numpy array or list).

    For shard kernels that map an input array to an output whose halves
    concatenate to the whole.  Returns ``None`` when the argument has
    one element or fewer.
    """

    def split(args: tuple) -> list[tuple] | None:
        arr = args[pos]
        n = len(arr)
        if n <= 1:
            return None
        mid = n // 2
        left, right = list(args), list(args)
        left[pos] = arr[:mid]
        right[pos] = arr[mid:]
        return [tuple(left), tuple(right)]

    return split


def _chaos_call(fn: Callable[..., R], args: tuple, action: str, delay_s: float) -> R:
    """Worker-side chaos wrapper (module-level so process workers pickle it).

    ``hang`` stalls, then computes anyway — if the deadline is generous
    the shard recovers, otherwise the parent has already moved on and
    the late result is discarded.  ``kill`` exits the worker process
    without cleanup, which the parent observes as ``BrokenProcessPool``.
    """
    if action == "hang":
        time.sleep(delay_s)
        return fn(*args)
    if action == "kill":
        os._exit(17)
    raise AssertionError(f"unknown chaos action {action!r}")  # pragma: no cover


def _simulated_death(fn: Callable[..., R], args: tuple) -> R:
    """Thread/serial stand-in for a killed worker (``os._exit`` would take
    the whole interpreter down there)."""
    raise RuntimeError("simulated worker death")


DEFAULT_CHAOS_SITES = ("parallel:shard", "parallel:worker")


def _consult_chaos(chaos, sites=DEFAULT_CHAOS_SITES) -> ChaosDirective | None:
    """Fire the chaos sites for one shard attempt; raising faults propagate."""
    if chaos is None:
        return None
    directive = None
    for site in sites:
        directive = chaos(site)
        if directive is not None:
            break
    return directive


def _error_text(error: BaseException) -> str:
    return f"{type(error).__name__}: {error}"


class Executor:
    """Ordered fan-out over the configured backend.

    ``map``/``starmap`` submit every item up front and collect results
    in submission order, so output ordering is deterministic no matter
    which worker finishes first.  A worker exception propagates to the
    caller (the first one in submission order), matching serial
    semantics.

    ``supervised_map``/``supervised_starmap`` run the same fan-out under
    the supervision ladder (deadline → retry → bisect → serial fallback
    → quarantine; see the module docstring) and return a
    :class:`SupervisedResult` instead of a bare list.
    """

    def __init__(self, parallel: ParallelConfig | None = None) -> None:
        self.parallel = resolve_parallel(parallel)

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """``[fn(x) for x in items]`` with backend fan-out."""
        return self._run(fn, [(item,) for item in items])

    def starmap(
        self, fn: Callable[..., R], items: Iterable[Sequence]
    ) -> list[R]:
        """``[fn(*args) for args in items]`` with backend fan-out."""
        return self._run(fn, [tuple(args) for args in items])

    def _run(self, fn: Callable[..., R], calls: list[tuple]) -> list[R]:
        if not calls:
            return []
        backend = self.parallel.resolved_backend()
        workers = min(self.parallel.workers, len(calls))
        if backend == "serial" or workers <= 1:
            return [fn(*args) for args in calls]
        if backend == "process_shm":
            keeper = get_worker_pool()
            pool = keeper.acquire(workers)
            clean = False
            try:
                futures = [pool.submit(fn, *args) for args in calls]
                values = [future.result() for future in futures]
                clean = True
                return values
            finally:
                # Any exception (including a worker's, re-raised here)
                # may leave queued work behind; discard rather than
                # recycle a pool with unknown in-flight state.
                keeper.release(pool, dirty=not clean)
        pool_cls = (
            ThreadPoolExecutor if backend == "thread" else ProcessPoolExecutor
        )
        with pool_cls(max_workers=workers) as pool:
            futures = [pool.submit(fn, *args) for args in calls]
            return [future.result() for future in futures]

    # -- supervised execution ------------------------------------------

    def supervised_map(
        self,
        fn: Callable[[T], R],
        items: Iterable[T],
        *,
        policy: SupervisionPolicy | None = None,
        split: Callable[[tuple], list[tuple] | None] | None = None,
        merge: Callable[[list], R] | None = None,
        chaos: Callable[[str], ChaosDirective | None] | None = None,
        sleep: Callable[[float], None] | None = None,
        alternates: Sequence[Sequence[tuple]] | None = None,
        chaos_sites: Sequence[str] = DEFAULT_CHAOS_SITES,
    ) -> SupervisedResult:
        """:meth:`map` under the supervision ladder."""
        return self.supervised_starmap(
            fn,
            [(item,) for item in items],
            policy=policy,
            split=split,
            merge=merge,
            chaos=chaos,
            sleep=sleep,
            alternates=alternates,
            chaos_sites=chaos_sites,
        )

    def supervised_starmap(
        self,
        fn: Callable[..., R],
        items: Iterable[Sequence],
        *,
        policy: SupervisionPolicy | None = None,
        split: Callable[[tuple], list[tuple] | None] | None = None,
        merge: Callable[[list], R] | None = None,
        chaos: Callable[[str], ChaosDirective | None] | None = None,
        sleep: Callable[[float], None] | None = None,
        alternates: Sequence[Sequence[tuple]] | None = None,
        chaos_sites: Sequence[str] = DEFAULT_CHAOS_SITES,
    ) -> SupervisedResult:
        """:meth:`starmap` under the supervision ladder.

        Parameters
        ----------
        policy:
            Overrides ``parallel.supervision`` (which overrides the
            default :class:`SupervisionPolicy`).
        split / merge:
            Shard bisection pair: ``split(args)`` returns sub-call arg
            tuples (or ``None`` when unsplittable) and ``merge(values)``
            reassembles their outputs into the value the original call
            would have produced.  Both or neither must be given;
            without them the bisection rung is skipped.
        chaos:
            Overrides ``parallel.chaos`` (test/drill hook).
        sleep:
            Injected into :func:`repro.utils.retry.retry_call` so tests
            can skip real backoff sleeps.
        alternates:
            Per-call replacement argument tuples for the replica rung:
            ``alternates[i]`` are argument sets equivalent to
            ``calls[i]`` (same result, different data copy — the index
            cluster's replicas).  When call *i* fails its retry rung,
            each alternate walks the retry rung in turn before
            bisection is considered; a success is recorded as outcome
            ``"replica"``.  Must align 1:1 with the submitted calls.
        chaos_sites:
            Site names consulted (in order) on every shard attempt;
            the default is the generic parallel pair, the index
            cluster passes ``("index:shard", "index:replica")``.

        Returns a :class:`SupervisedResult` whose ``results`` align
        1:1 with the submitted calls; quarantined shards hold ``None``.
        Raises :class:`PoisonShardError` instead when the policy says
        ``on_poison="fail"``.
        """
        if (split is None) != (merge is None):
            raise ValueError("split and merge must be provided together")
        calls = [tuple(args) for args in items]
        if alternates is not None and len(alternates) != len(calls):
            raise ValueError(
                f"alternates must align with calls: got {len(alternates)} "
                f"alternate sets for {len(calls)} calls"
            )
        if policy is None:
            policy = self.parallel.supervision or SupervisionPolicy()
        if chaos is None:
            chaos = self.parallel.chaos
        backend = self.parallel.resolved_backend()
        workers = min(self.parallel.workers, max(1, len(calls)))
        report = ExecutionReport(backend=backend, workers=workers)
        if not calls:
            return SupervisedResult(results=[], report=report)
        report.shards = [
            ShardReport(index=i, backend=backend) for i in range(len(calls))
        ]

        results: list = [None] * len(calls)
        failed: dict[int, BaseException] = {}
        sites = tuple(chaos_sites)
        if backend == "serial" or workers <= 1:
            self._first_wave_serial(
                fn, calls, report, chaos, results, failed, sites
            )
        else:
            self._first_wave_pooled(
                fn, calls, report, policy, chaos, results, failed, workers,
                sites,
            )

        for index in sorted(failed):
            shard = report.shards[index]
            try:
                results[index] = self._rescue(
                    fn, calls[index], shard, policy, split, merge, chaos,
                    depth=0, sleep=sleep, sites=sites,
                    alternates=(
                        tuple(alternates[index]) if alternates else ()
                    ),
                )
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as error:
                shard.outcome = "quarantined"
                if policy.on_poison == "fail":
                    raise PoisonShardError(index, error, report) from error
                results[index] = None
        return SupervisedResult(results=results, report=report)

    def _first_wave_serial(
        self, fn, calls, report, chaos, results, failed,
        sites=DEFAULT_CHAOS_SITES,
    ) -> None:
        """Serial first wave: plain in-process calls, chaos honoured."""
        for index, args in enumerate(calls):
            shard = report.shards[index]
            started = time.perf_counter()
            try:
                results[index] = self._attempt_once(
                    fn, args, shard, None, chaos, sites, use_pool=False
                )
                shard.outcome = "ok"
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as error:
                shard.errors.append(_error_text(error))
                failed[index] = error
            finally:
                shard.duration_s += time.perf_counter() - started

    def _first_wave_pooled(
        self, fn, calls, report, policy, chaos, results, failed, workers,
        sites=DEFAULT_CHAOS_SITES,
    ) -> None:
        """Pooled first wave: submit everything, collect in submission
        order with per-shard deadlines, survive worker death.

        The shared pool is shut down without waiting when a shard hung
        or the pool broke (a ``with`` block would join the hung worker
        and stall the parent — the exact pathology supervision exists
        to prevent).  On the ``process_shm`` backend the pool comes
        from (and, when clean, returns to) the warm :class:`WorkerPool`
        keeper instead of being spawned per fan-out; a dirty pool is
        discarded there under the same no-join discipline.
        """
        backend = self.parallel.resolved_backend()
        keeper = get_worker_pool() if backend == "process_shm" else None
        if keeper is not None:
            pool = keeper.acquire(workers)
        else:
            pool_cls = (
                ThreadPoolExecutor
                if backend == "thread"
                else ProcessPoolExecutor
            )
            pool = pool_cls(max_workers=workers)
        dirty = False  # hung or broken: don't join workers on shutdown
        try:
            futures: list[_futures.Future | None] = [None] * len(calls)
            for index, args in enumerate(calls):
                shard = report.shards[index]
                shard.attempts += 1
                try:
                    directive = _consult_chaos(chaos, sites)
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception as error:
                    shard.errors.append(_error_text(error))
                    failed[index] = error
                    continue
                try:
                    futures[index] = self._submit(
                        pool, fn, args, directive, backend
                    )
                except (KeyboardInterrupt, SystemExit):
                    raise
                except _futures.BrokenExecutor as error:
                    # A worker died while we were still submitting (the
                    # pool breaks mid-loop); every later submit raises
                    # too.  Fail each shard individually — the rescue
                    # ladder re-runs them on fresh pools.
                    dirty = True
                    shard.errors.append(_error_text(error))
                    failed[index] = error
                except Exception as error:
                    shard.errors.append(_error_text(error))
                    failed[index] = error
            for index, future in enumerate(futures):
                if future is None:
                    continue
                shard = report.shards[index]
                started = time.perf_counter()
                try:
                    results[index] = future.result(
                        timeout=policy.shard_deadline_s
                    )
                    shard.outcome = "ok"
                except (KeyboardInterrupt, SystemExit):
                    raise
                except _futures.TimeoutError as error:
                    dirty = True
                    future.cancel()
                    hang = TimeoutError(
                        f"shard {index} exceeded deadline "
                        f"{policy.shard_deadline_s}s"
                    )
                    hang.__cause__ = error
                    shard.errors.append(_error_text(hang))
                    failed[index] = hang
                except _futures.BrokenExecutor as error:
                    dirty = True
                    shard.errors.append(_error_text(error))
                    failed[index] = error
                except Exception as error:
                    shard.errors.append(_error_text(error))
                    failed[index] = error
                finally:
                    shard.duration_s += time.perf_counter() - started
        finally:
            if keeper is not None:
                keeper.release(pool, dirty=dirty)
            else:
                pool.shutdown(wait=not dirty, cancel_futures=True)

    @staticmethod
    def _submit(pool, fn, args, directive, backend) -> _futures.Future:
        if directive is None:
            return pool.submit(fn, *args)
        if directive.action == "kill" and backend not in (
            "process",
            "process_shm",
        ):
            return pool.submit(_simulated_death, fn, args)
        return pool.submit(
            _chaos_call, fn, args, directive.action, directive.delay_s
        )

    def _rescue(
        self, fn, args, shard, policy, split, merge, chaos, depth, sleep,
        sites=DEFAULT_CHAOS_SITES, alternates=(),
    ):
        """Walk a failed shard down the rescue ladder; return its value.

        Raises the final underlying error when every rung fails.
        ``shard.outcome`` is only classified at ``depth == 0`` — the
        recursive bisection halves contribute attempts and errors to
        the same report but not an outcome of their own.  ``alternates``
        (replica argument sets) apply only at depth 0: a bisected half
        is a different call, for which no replica args exist.
        """
        started = time.perf_counter()
        try:
            # Rung 2: fresh single-worker pool under the retry policy.
            def attempt(attempt_args=args):
                try:
                    return self._attempt_once(
                        fn, attempt_args, shard, policy, chaos, sites,
                        use_pool=True,
                    )
                except (KeyboardInterrupt, SystemExit):
                    raise
                except BaseException as error:
                    shard.errors.append(_error_text(error))
                    raise

            try:
                value = retry_call(
                    attempt, policy.retry, sleep=sleep or time.sleep
                ).value
                if depth == 0:
                    shard.outcome = "retried"
                return value
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as error:
                last_error: BaseException = error

            # Rung 3: replica failover — the same query against an
            # identical copy of the shard's data, so a dead or hung
            # replica costs one rung, not the result.  Each alternate
            # gets the full retry policy of rung 2.
            for offset, alt_args in enumerate(alternates):
                try:
                    value = retry_call(
                        lambda alt=tuple(alt_args): attempt(alt),
                        policy.retry,
                        sleep=sleep or time.sleep,
                    ).value
                    if depth == 0:
                        shard.outcome = "replica"
                        shard.replica = offset + 1
                    return value
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception as error:
                    last_error = error

            # Rung 4: bisection re-sharding, each half down the ladder.
            if (
                policy.bisect
                and split is not None
                and depth < policy.max_bisect_depth
            ):
                parts = split(args)
                if parts:
                    try:
                        values = [
                            self._rescue(
                                fn, part, shard, policy, split, merge,
                                chaos, depth + 1, sleep, sites,
                            )
                            for part in parts
                        ]
                        value = merge(values)
                        if depth == 0:
                            shard.outcome = "bisected"
                        return value
                    except (KeyboardInterrupt, SystemExit):
                        raise
                    except Exception as error:
                        last_error = error

            # Rung 5: serial fallback in the calling process.
            if policy.serial_fallback:
                try:
                    value = self._attempt_once(
                        fn, args, shard, policy, chaos, sites, use_pool=False
                    )
                    if depth == 0:
                        shard.outcome = "serial"
                    return value
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception as error:
                    shard.errors.append(_error_text(error))
                    last_error = error

            raise last_error
        finally:
            shard.duration_s += time.perf_counter() - started

    def _attempt_once(
        self, fn, args, shard, policy, chaos, sites=DEFAULT_CHAOS_SITES,
        *, use_pool,
    ):
        """One shard attempt: in-process, or on a fresh one-worker pool.

        Chaos is consulted every attempt so bounded faults
        (``times=N``) burn out across retries exactly like transient
        real-world failures.  In-process attempts degrade ``kill`` to a
        raised error and honour ``hang`` as a sleep (no preemption is
        possible without a pool).
        """
        shard.attempts += 1
        directive = _consult_chaos(chaos, sites)
        backend = self.parallel.resolved_backend()
        deadline = policy.shard_deadline_s if policy is not None else None
        if not use_pool or backend == "serial":
            if directive is not None:
                if directive.action == "kill":
                    return _simulated_death(fn, args)
                time.sleep(directive.delay_s)
            return fn(*args)
        pool_cls = (
            ThreadPoolExecutor if backend == "thread" else ProcessPoolExecutor
        )
        pool = pool_cls(max_workers=1)
        dirty = False
        try:
            future = self._submit(pool, fn, args, directive, backend)
            try:
                return future.result(timeout=deadline)
            except _futures.TimeoutError as error:
                dirty = True
                future.cancel()
                raise TimeoutError(
                    f"shard {shard.index} exceeded deadline {deadline}s"
                ) from error
            except _futures.BrokenExecutor:
                dirty = True
                raise
        finally:
            pool.shutdown(wait=not dirty, cancel_futures=True)


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    parallel: ParallelConfig | None = None,
) -> list[R]:
    """One-shot :meth:`Executor.map` convenience wrapper."""
    return Executor(parallel).map(fn, items)


def parallel_starmap(
    fn: Callable[..., R],
    items: Iterable[Sequence],
    parallel: ParallelConfig | None = None,
) -> list[R]:
    """One-shot :meth:`Executor.starmap` convenience wrapper."""
    return Executor(parallel).starmap(fn, items)
