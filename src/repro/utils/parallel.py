"""Parallel execution layer for the pipeline's hot paths.

The paper ran its all-pairs comparisons and per-cluster Hawkes fits on a
two-GPU TensorFlow rig; the laptop-scale reproduction instead shards its
embarrassingly-parallel hot paths — radius neighbourhoods, Hamming
matrix rows, per-community association, per-cluster fits — over a small
executor abstraction with three interchangeable backends:

* ``serial`` — a plain loop in the calling thread.  The default, and
  the reference semantics every other backend must reproduce.
* ``thread`` — a :class:`~concurrent.futures.ThreadPoolExecutor`.
  Effective for numpy-heavy work that releases the GIL; zero
  serialisation cost.
* ``process`` — a :class:`~concurrent.futures.ProcessPoolExecutor`.
  Work items are pickled to the workers, so hot paths hand over compact
  numpy shards (a ``uint64`` hash array plus a query range) rather than
  live index objects; worker functions must be module-level.

**Determinism guarantee.** Results are returned in *submission* order
regardless of completion order (futures are collected in order, never
``as_completed``), and every shard kernel produces output identical to
the serial path.  ``--workers N`` therefore changes wall time, never
results; the property tests in ``tests/test_parallel_identity.py`` pin
this bit-for-bit.

Configuration resolves in three steps: an explicit
:class:`ParallelConfig` wins; otherwise the ``REPRO_WORKERS`` /
``REPRO_PARALLEL_BACKEND`` environment variables apply (this is how CI
runs the whole tier-1 suite under 2 workers); otherwise everything runs
serially, bit-identical to the historical single-core behaviour.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

__all__ = [
    "BACKENDS",
    "ENV_BACKEND",
    "ENV_WORKERS",
    "Executor",
    "ParallelConfig",
    "parallel_map",
    "parallel_starmap",
    "resolve_parallel",
    "shard_bounds",
]

T = TypeVar("T")
R = TypeVar("R")

BACKENDS = ("auto", "serial", "thread", "process")

ENV_WORKERS = "REPRO_WORKERS"
ENV_BACKEND = "REPRO_PARALLEL_BACKEND"


@dataclass(frozen=True)
class ParallelConfig:
    """How a hot path should fan out.

    Attributes
    ----------
    workers:
        Worker count; 1 means serial execution (the default).
    backend:
        ``"serial"``, ``"thread"``, ``"process"``, or ``"auto"``
        (serial when ``workers == 1``, otherwise process — the only
        backend that sidesteps the GIL for pure-Python kernels).
    chunk_size:
        Items per shard for :func:`shard_bounds`; ``None`` applies the
        heuristic (one large shard per process worker to amortise
        pickling, four smaller shards per thread worker for load
        balancing).
    """

    workers: int = 1
    backend: str = "auto"
    chunk_size: int | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of {BACKENDS}"
            )
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")

    def resolved_backend(self) -> str:
        """The concrete backend after ``auto`` resolution."""
        if self.backend != "auto":
            return self.backend
        return "serial" if self.workers <= 1 else "process"

    @property
    def is_serial(self) -> bool:
        """True when execution degenerates to a plain loop."""
        return self.workers <= 1 or self.resolved_backend() == "serial"

    @classmethod
    def from_env(cls, env=None) -> "ParallelConfig":
        """Config from ``REPRO_WORKERS`` / ``REPRO_PARALLEL_BACKEND``.

        Unset or malformed variables fall back to the serial default, so
        library behaviour never changes unless explicitly requested.
        """
        env = os.environ if env is None else env
        try:
            workers = int(env.get(ENV_WORKERS, "") or 1)
        except ValueError:
            workers = 1
        backend = env.get(ENV_BACKEND, "") or "auto"
        if backend not in BACKENDS:
            backend = "auto"
        return cls(workers=max(1, workers), backend=backend)


def resolve_parallel(parallel: ParallelConfig | None) -> ParallelConfig:
    """An explicit config wins; ``None`` falls back to the environment."""
    return ParallelConfig.from_env() if parallel is None else parallel


def shard_bounds(
    n_items: int, parallel: ParallelConfig
) -> list[tuple[int, int]]:
    """Contiguous ``(start, stop)`` shards covering ``range(n_items)``.

    Chunk size follows the backend heuristic unless the config pins one:
    process shards are worker-sized (each task ships a pickled numpy
    shard, so fewer/larger is cheaper), thread and serial shards are a
    quarter of that (finer grain smooths uneven per-item cost).
    """
    if n_items <= 0:
        return []
    if parallel.chunk_size is not None:
        size = parallel.chunk_size
    else:
        oversubscribe = 1 if parallel.resolved_backend() == "process" else 4
        size = max(1, -(-n_items // (parallel.workers * oversubscribe)))
    return [
        (start, min(start + size, n_items))
        for start in range(0, n_items, size)
    ]


class Executor:
    """Ordered fan-out over the configured backend.

    ``map``/``starmap`` submit every item up front and collect results
    in submission order, so output ordering is deterministic no matter
    which worker finishes first.  A worker exception propagates to the
    caller (the first one in submission order), matching serial
    semantics.
    """

    def __init__(self, parallel: ParallelConfig | None = None) -> None:
        self.parallel = resolve_parallel(parallel)

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """``[fn(x) for x in items]`` with backend fan-out."""
        return self._run(fn, [(item,) for item in items])

    def starmap(
        self, fn: Callable[..., R], items: Iterable[Sequence]
    ) -> list[R]:
        """``[fn(*args) for args in items]`` with backend fan-out."""
        return self._run(fn, [tuple(args) for args in items])

    def _run(self, fn: Callable[..., R], calls: list[tuple]) -> list[R]:
        if not calls:
            return []
        backend = self.parallel.resolved_backend()
        workers = min(self.parallel.workers, len(calls))
        if backend == "serial" or workers <= 1:
            return [fn(*args) for args in calls]
        pool_cls = (
            ThreadPoolExecutor if backend == "thread" else ProcessPoolExecutor
        )
        with pool_cls(max_workers=workers) as pool:
            futures = [pool.submit(fn, *args) for args in calls]
            return [future.result() for future in futures]


def parallel_map(
    fn: Callable[[T], R],
    items: Iterable[T],
    parallel: ParallelConfig | None = None,
) -> list[R]:
    """One-shot :meth:`Executor.map` convenience wrapper."""
    return Executor(parallel).map(fn, items)


def parallel_starmap(
    fn: Callable[..., R],
    items: Iterable[Sequence],
    parallel: ParallelConfig | None = None,
) -> list[R]:
    """One-shot :meth:`Executor.starmap` convenience wrapper."""
    return Executor(parallel).starmap(fn, items)
