"""Zero-copy shard transport over POSIX shared memory.

The parallel layer's process backend historically pickled every shard's
input arrays to every worker on every call — BENCH_parallel.json showed
the flagship 50k ``radius_neighbors_mih`` fan-out *losing* to serial
(0.87x) purely on transport.  This module replaces the pickle with a
publish-once/attach-many protocol:

* The parent :meth:`SharedArrayRegistry.publish`\\ es an input array
  into a :class:`multiprocessing.shared_memory.SharedMemory` segment —
  one memcpy, total, regardless of worker or shard count.
* Workers receive a tiny picklable :class:`ShmArrayRef` descriptor
  (segment name, dtype, shape, window bounds) and
  :func:`resolve_array` it back into a **read-only** numpy view over
  the mapped segment — no copy, no unpickle.
* Refs are sliceable (``ref[start:stop]`` narrows the window), so call
  sites shard a published array with the same expressions they use on
  the array itself, and the supervision ladder's bisection splitters
  (:func:`repro.utils.parallel.array_splitter`) work unchanged.

**Lifecycle guarantees.**  Segments are owned by the publishing
process:

* explicit :meth:`~SharedArrayRegistry.release` closes and unlinks
  (idempotent — double release and double unlink are safe no-ops);
* a ``weakref.finalize`` on the registry plus an ``atexit`` hook
  release everything still published at interpreter exit, guarded by
  the owner PID so a forked child can never unlink its parent's
  segments;
* :func:`sweep_stale_segments` reclaims segments whose owner died
  without cleanup (SIGKILL, ``os._exit``): names embed the owner PID
  (``repro_shm_<pid>_<seq>_<token>``), and the sweep unlinks any whose
  owner no longer exists.  It runs automatically on first registry use
  in each process.
* the parent resolves its own refs from the *original* arrays (never
  through the shm mapping), so the supervision ladder's serial
  fallback works even if a segment has already been unlinked — and a
  quarantine-after-release race cannot poison results.

**Worker-side notes.**  Attaching a segment registers it with
multiprocessing's resource tracker (CPython issue bpo-38119).  Pool
workers inherit the *owner's* tracker process, whose name cache is a
set — the attach-side register simply deduplicates into the owner's
create-side entry, and the owner's eventual unlink balances it.  Only
a process with its *own* tracker (not started by multiprocessing)
must unregister the attachment, or its tracker would unlink the
segment at exit and destroy it for everyone; :func:`_attach` detects
which case it is in.  Attached mappings are cached per process and
closed at worker exit.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import secrets
import threading
import weakref
from contextlib import contextmanager
from dataclasses import dataclass, replace
from multiprocessing import resource_tracker, shared_memory

import numpy as np

__all__ = [
    "ShmArrayRef",
    "SharedArrayRegistry",
    "get_registry",
    "resolve_array",
    "shared_inputs",
    "sweep_stale_segments",
]

_SEGMENT_PREFIX = "repro_shm"

# Linux exposes POSIX shared memory as files here; the stale sweep scans
# it.  On platforms without it the sweep is a no-op (segments are still
# released by finalizers on clean exit).
_SHM_DIR = "/dev/shm"


@dataclass(frozen=True)
class ShmArrayRef:
    """A picklable window onto a published 1-D shared-memory array.

    ``segment`` names the shared-memory block, ``dtype``/``size``
    describe the full published array, and ``start``/``stop`` bound the
    window this ref exposes.  Slicing a ref narrows the window without
    touching the segment, so shard bounds compose: ``ref[a:b][c:d]``
    equals ``ref[a+c:a+d]``.
    """

    segment: str
    dtype: str
    size: int
    start: int
    stop: int

    def __len__(self) -> int:
        return max(0, self.stop - self.start)

    def __getitem__(self, key: slice) -> "ShmArrayRef":
        if not isinstance(key, slice) or key.step not in (None, 1):
            raise TypeError(
                "ShmArrayRef supports contiguous slices only "
                f"(got {key!r})"
            )
        start, stop, _ = key.indices(len(self))
        return replace(
            self, start=self.start + start, stop=self.start + stop
        )


def _segment_owner_pid(name: str) -> int | None:
    """The owner PID embedded in one of our segment names, or ``None``."""
    if not name.startswith(_SEGMENT_PREFIX + "_"):
        return None
    parts = name.split("_")
    try:
        return int(parts[2])
    except (IndexError, ValueError):
        return None


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return True
    return True


def _unlink_quietly(shm: shared_memory.SharedMemory) -> None:
    """Unlink a segment, tolerating a prior unlink (idempotent)."""
    try:
        shm.unlink()
    except FileNotFoundError:
        pass


def sweep_stale_segments() -> int:
    """Unlink segments whose owning process died without cleanup.

    Returns the number of segments reclaimed.  Only touches segments
    carrying this module's name prefix; a PID that cannot be parsed or
    probed leaves the segment alone (never delete what we cannot
    attribute).
    """
    try:
        names = os.listdir(_SHM_DIR)
    except OSError:
        return 0
    reclaimed = 0
    for name in names:
        pid = _segment_owner_pid(name)
        if pid is None or pid == os.getpid() or _pid_alive(pid):
            continue
        try:
            os.unlink(os.path.join(_SHM_DIR, name))
            reclaimed += 1
        except OSError:
            continue
    return reclaimed


def _release_owned(segments: dict, owner_pid: int) -> None:
    """Finalizer body: close+unlink every still-published segment.

    PID-guarded: a forked child inherits the registry (and this
    finalizer) but must never unlink segments its parent still serves.
    """
    if os.getpid() != owner_pid:
        return
    for shm in list(segments.values()):
        try:
            shm.close()
        except OSError:
            pass
        _unlink_quietly(shm)
    segments.clear()


class SharedArrayRegistry:
    """Owner-side ledger of published segments + process-wide attach cache.

    One instance per process (see :func:`get_registry`).  The publish
    side runs in the parent; the resolve side runs everywhere — in the
    parent it short-circuits to the original array (``_local``), in a
    worker it attaches the segment once and caches the mapping.
    """

    def __init__(self) -> None:
        self._owner_pid = os.getpid()
        self._lock = threading.Lock()
        self._counter = 0
        # name -> SharedMemory we created (owner side).
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        # name -> the original published array (owner-side resolution:
        # the serial fallback never touches the shm mapping).
        self._local: dict[str, np.ndarray] = {}
        # name -> (SharedMemory, read-only view) attached in THIS
        # process (worker side).
        self._attached: dict[str, tuple[shared_memory.SharedMemory, np.ndarray]] = {}
        self._finalizer = weakref.finalize(
            self, _release_owned, self._segments, self._owner_pid
        )
        sweep_stale_segments()

    # -- owner side ----------------------------------------------------

    def publish(self, array: np.ndarray) -> ShmArrayRef:
        """Copy a 1-D array into a fresh segment; return its ref.

        The single memcpy here replaces one pickled copy *per shard per
        fan-out* on the pickle transport.  The original array is kept
        for owner-side resolution; the caller releases the ref (or
        leans on the exit finalizer).
        """
        array = np.ascontiguousarray(array).reshape(-1)
        with self._lock:
            self._counter += 1
            name = (
                f"{_SEGMENT_PREFIX}_{self._owner_pid}_{self._counter}_"
                f"{secrets.token_hex(4)}"
            )
        nbytes = max(1, array.nbytes)  # zero-length arrays still need a block
        shm = shared_memory.SharedMemory(name=name, create=True, size=nbytes)
        if array.nbytes:
            np.ndarray(
                array.shape, dtype=array.dtype, buffer=shm.buf
            )[:] = array
        with self._lock:
            self._segments[name] = shm
            self._local[name] = array
        return ShmArrayRef(
            segment=name,
            dtype=np.dtype(array.dtype).str,
            size=int(array.size),
            start=0,
            stop=int(array.size),
        )

    def release(self, ref: ShmArrayRef | None) -> None:
        """Close and unlink a published segment (idempotent)."""
        if ref is None:
            return
        with self._lock:
            shm = self._segments.pop(ref.segment, None)
            self._local.pop(ref.segment, None)
        if shm is None:
            return
        try:
            shm.close()
        except OSError:
            pass
        _unlink_quietly(shm)

    def release_all(self) -> None:
        """Release every segment this process published."""
        with self._lock:
            names = list(self._segments)
        for name in names:
            self.release(
                ShmArrayRef(segment=name, dtype="", size=0, start=0, stop=0)
            )

    @property
    def published_count(self) -> int:
        return len(self._segments)

    # -- resolve side --------------------------------------------------

    def resolve(self, ref: ShmArrayRef) -> np.ndarray:
        """The array window a ref describes.

        Owner process: a slice of the original array — by construction
        the serial-fallback path never maps shared memory.  Any other
        process: a read-only view over the attached segment (attached
        once, cached).
        """
        local = self._local.get(ref.segment)
        if local is not None:
            return local[ref.start : ref.stop]
        view = self._attach(ref)
        return view[ref.start : ref.stop]

    def _attach(self, ref: ShmArrayRef) -> np.ndarray:
        with self._lock:
            entry = self._attached.get(ref.segment)
        if entry is not None:
            return entry[1]
        shm = shared_memory.SharedMemory(name=ref.segment)
        # Keep the owner solely responsible for the unlink (bpo-38119).
        # Pool workers share the owner's tracker process, where the
        # attach-side register deduplicates into the owner's entry —
        # unregistering would strip that entry and the owner's unlink
        # would go unaccounted.  Only a standalone attacher (own
        # tracker) must unregister, or its tracker unlinks the segment
        # when it exits, destroying it for everyone.
        if multiprocessing.parent_process() is None:
            try:
                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:
                pass
        view = np.ndarray((ref.size,), dtype=np.dtype(ref.dtype), buffer=shm.buf)
        view.flags.writeable = False
        with self._lock:
            self._attached[ref.segment] = (shm, view)
        return view

    def close_attachments(self) -> None:
        """Drop this process's attach cache (worker shutdown path)."""
        with self._lock:
            attached = list(self._attached.values())
            self._attached.clear()
        for shm, _view in attached:
            try:
                shm.close()
            except (OSError, BufferError):
                pass


_REGISTRY: SharedArrayRegistry | None = None
_REGISTRY_LOCK = threading.Lock()


def get_registry() -> SharedArrayRegistry:
    """The per-process registry (created on first use).

    A forked worker inherits the parent's instance object but must not
    act as owner for the parent's segments — ``_release_owned`` is PID
    guarded, and resolution through the inherited ``_local`` map is
    harmless (the inherited pages hold the same bytes).  A *spawned*
    worker starts empty and attaches.
    """
    global _REGISTRY
    with _REGISTRY_LOCK:
        if _REGISTRY is None:
            _REGISTRY = SharedArrayRegistry()
        return _REGISTRY


@atexit.register
def _atexit_cleanup() -> None:  # pragma: no cover - exercised at exit
    registry = _REGISTRY
    if registry is None:
        return
    if os.getpid() == registry._owner_pid:
        registry.release_all()
    registry.close_attachments()


def resolve_array(
    value: np.ndarray | ShmArrayRef, dtype=None
) -> np.ndarray:
    """A kernel-side argument as a contiguous array.

    Shard kernels call this on every array argument so one signature
    serves both transports: a plain array (pickle transport, serial
    path) passes through ``ascontiguousarray``; a :class:`ShmArrayRef`
    resolves through the registry.  ``dtype`` asserts the expected
    element type — a ref published with a different dtype is a caller
    bug worth failing loudly on, not silently casting shared bytes.
    """
    if isinstance(value, ShmArrayRef):
        if dtype is not None and np.dtype(value.dtype) != np.dtype(dtype):
            raise TypeError(
                f"shared array {value.segment} holds {value.dtype}, "
                f"kernel expects {np.dtype(dtype).str}"
            )
        return get_registry().resolve(value)
    if dtype is not None:
        return np.ascontiguousarray(value, dtype=dtype).reshape(-1)
    return np.ascontiguousarray(value).reshape(-1)


@contextmanager
def shared_inputs(parallel, *arrays: np.ndarray):
    """Publish fan-out inputs for the shm transport, or pass them through.

    Call sites wrap their kernel inputs::

        with shared_inputs(parallel, hashes) as (hashes_src,):
            ... shard hashes_src exactly like the array ...

    When ``parallel`` resolves to the ``process_shm`` backend each
    array is published once and the refs are yielded; every other
    backend yields the arrays untouched (zero overhead, bit-identical
    call shape).  Published segments are released when the block exits
    — including on error — so a fan-out can never leak its inputs.
    """
    uses_shm = getattr(parallel, "uses_shm", False)
    if not uses_shm:
        yield tuple(arrays)
        return
    registry = get_registry()
    refs = [registry.publish(array) for array in arrays]
    try:
        yield tuple(refs)
    finally:
        for ref in refs:
            registry.release(ref)
