"""Optional compiled tier for the popcount-heavy inner loops.

The two hottest kernels — the batched MIH self-join
(:func:`repro.hashing.index.mih_neighbors_shard`) and the dense Hamming
matrix (:func:`repro.utils.bitops._matrix_rows`) — spend most of their
time in per-query Python overhead and broadcast temporaries that a
30-line native loop eliminates.  This module provides that loop behind
a strict contract:

* **Env-gated.**  ``REPRO_COMPILED`` selects the tier: unset/``0``
  keeps the pure-numpy kernels (the default — importing this module
  never compiles anything); ``1``/``auto`` picks the best available
  implementation; ``numba`` or ``cc`` pin one.  A requested tier that
  is unavailable falls back to numpy with a one-time
  :class:`RuntimeWarning` — outputs never change, only wall time.
* **Identical outputs.**  Every compiled kernel reproduces the numpy
  kernel bit for bit (same dtypes, same ordering, same tie-breaks);
  ``tests/test_utils_compiled.py`` pins this, and the parallel
  identity suite runs unchanged on top.
* **No new dependencies.**  The ``numba`` tier activates only when
  numba is already importable.  The ``cc`` tier compiles a small C
  file at first use with whatever C compiler the host already has
  (``cc``/``gcc``/``clang``), caching the shared object under the
  system temp directory keyed by source digest — so the compile cost
  is paid once per source revision, not per process, and forked pool
  workers inherit the loaded library for free.  Hosts with neither
  numba nor a compiler simply stay on numpy.

Callers probe with the ``*_or_none`` convention: each kernel returns
``None`` when the tier is off or unavailable, and the call site falls
through to its numpy implementation.  :func:`kernel_variant` suffixes
cost-model kernel names with the active tier so compiled-tier
throughput observations never contaminate numpy-tier calibration.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
import warnings
from pathlib import Path

import numpy as np

__all__ = [
    "ENV_COMPILED",
    "enabled",
    "hamming_matrix",
    "kernel_variant",
    "mih_query_batch",
    "refresh",
    "tier",
]

ENV_COMPILED = "REPRO_COMPILED"

_OFF_VALUES = ("", "0", "off", "false", "no")
_AUTO_VALUES = ("1", "on", "true", "yes", "auto")

_C_SOURCE = r"""
#include <stdlib.h>
#include <string.h>

/* Dense Hamming distances: out[i*nb + j] = popcount(a[i] ^ b[j]). */
void hamming_matrix(
    const unsigned long long *a, long long na,
    const unsigned long long *b, long long nb,
    long long *out)
{
    for (long long i = 0; i < na; i++) {
        const unsigned long long ai = a[i];
        long long *row = out + i * nb;
        for (long long j = 0; j < nb; j++)
            row[j] = (long long)__builtin_popcountll(ai ^ b[j]);
    }
}

static int cmp_ll(const void *pa, const void *pb)
{
    const long long a = *(const long long *)pa;
    const long long b = *(const long long *)pb;
    return (a > b) - (a < b);
}

/* Ascending in-place sort; insertion sort for the short rows that
 * dominate (cluster-sized neighbourhoods), qsort past that. */
static void sort_ll(long long *values, long long count)
{
    if (count <= 32) {
        for (long long i = 1; i < count; i++) {
            const long long v = values[i];
            long long j = i - 1;
            while (j >= 0 && values[j] > v) {
                values[j + 1] = values[j];
                j--;
            }
            values[j + 1] = v;
        }
        return;
    }
    qsort(values, (size_t)count, sizeof(long long), cmp_ll);
}

/* Batched MIH self-join for queries [qstart, qstop): pigeonhole
 * candidate gathering over per-chunk byte groups, popcount
 * verification inline at each visit, then sort + adjacent-unique over
 * the (small) match set — the exact numpy kernel semantics (np.unique
 * of surviving candidates) without the per-query Python loop.
 * Verifying at the visit beats a seen-byte dedup map: candidate
 * visits dominate the run, and the map costs a second random access
 * per visit to save popcounts on the rare revisit (a member is
 * revisited only once per extra chunk its byte falls in the ball of,
 * at most 8 times, and nearly always verifies to a match anyway).
 *
 * orders:  8*n   — per chunk, positions sorted by that chunk's byte
 * lefts:   8*256 — per chunk, group start per byte value
 * rights:  8*256 — per chunk, group stop per byte value
 * ball_bytes/ball_starts — probe ball per byte value (257 offsets)
 * cand:    8*n scratch (a match can be visited once per chunk)
 * out/cap: flat result buffer; counts[q - qstart] = row length
 *
 * Returns the first unprocessed query index (== qstop when done): a
 * query whose row would overflow `out` is left for the caller to
 * retry with a larger buffer.  *out_len is the number of values
 * written. */
long long mih_query_batch(
    const unsigned long long *hashes, long long n,
    const long long *orders,
    const long long *lefts,
    const long long *rights,
    const unsigned char *ball_bytes,
    const long long *ball_starts,
    long long qstart, long long qstop,
    long long radius,
    long long *cand,
    long long *out, long long cap,
    long long *counts,
    long long *out_len)
{
    long long written = 0;
    for (long long q = qstart; q < qstop; q++) {
        const unsigned long long hq = hashes[q];
        long long nmatch = 0;
        for (int c = 0; c < 8; c++) {
            const unsigned char byte = (unsigned char)(hq >> (8 * c));
            const long long *order = orders + (long long)c * n;
            const long long *left = lefts + c * 256;
            const long long *right = rights + c * 256;
            for (long long p = ball_starts[byte];
                 p < ball_starts[byte + 1]; p++) {
                const unsigned char probe = ball_bytes[p];
                for (long long k = left[probe]; k < right[probe]; k++) {
                    const long long pos = order[k];
                    if (__builtin_popcountll(hq ^ hashes[pos]) <= radius)
                        cand[nmatch++] = pos;
                }
            }
        }
        sort_ll(cand, nmatch);
        long long count = 0;
        for (long long j = 0; j < nmatch; j++)
            if (j == 0 || cand[j] != cand[j - 1])
                cand[count++] = cand[j];
        if (written + count > cap) {
            *out_len = written;
            return q;
        }
        memcpy(out + written, cand, (size_t)count * sizeof(long long));
        written += count;
        counts[q - qstart] = count;
    }
    *out_len = written;
    return qstop;
}
"""

_LL = ctypes.c_longlong
_LL_P = np.ctypeslib.ndpointer(dtype=np.int64, flags="C_CONTIGUOUS")
_U64_P = np.ctypeslib.ndpointer(dtype=np.uint64, flags="C_CONTIGUOUS")
_U8_P = np.ctypeslib.ndpointer(dtype=np.uint8, flags="C_CONTIGUOUS")

_lock = threading.Lock()
_resolved: dict | None = None


def refresh() -> None:
    """Forget the resolved tier (tests flip ``REPRO_COMPILED`` and call
    this; production code never needs it)."""
    global _resolved
    with _lock:
        _resolved = None


def _find_compiler() -> str | None:
    for name in ("cc", "gcc", "clang"):
        found = shutil.which(name)
        if found:
            return found
    return None


# -march=native matters here, not just -O3: without it the compiler
# targets the baseline ISA, where __builtin_popcountll expands to a
# multi-instruction bit-twiddling sequence instead of the single POPCNT
# the popcount-per-visit inner loops are designed around.  Hosts whose
# compiler rejects the flag (rare cross toolchains) fall back to plain
# -O3 — slower, still correct.
_CC_FLAGS = ("-O3", "-march=native")
_CC_FALLBACK_FLAGS = ("-O3",)


def _load_cc_library() -> ctypes.CDLL | None:
    """Compile (once per source+flags digest) and load the C kernels."""
    key = _C_SOURCE + "\n//" + " ".join(_CC_FLAGS)
    digest = hashlib.sha256(key.encode()).hexdigest()[:16]
    lib_path = Path(tempfile.gettempdir()) / f"repro_kernels_{digest}.so"
    if not lib_path.exists():
        compiler = _find_compiler()
        if compiler is None:
            return None
        try:
            with tempfile.TemporaryDirectory() as build_dir:
                source = Path(build_dir) / "repro_kernels.c"
                source.write_text(_C_SOURCE)
                built = Path(build_dir) / "repro_kernels.so"
                for flags in (_CC_FLAGS, _CC_FALLBACK_FLAGS):
                    result = subprocess.run(
                        [
                            compiler,
                            *flags,
                            "-shared",
                            "-fPIC",
                            "-o",
                            str(built),
                            str(source),
                        ],
                        capture_output=True,
                        timeout=120,
                    )
                    if result.returncode == 0:
                        break
                else:
                    return None
                # Atomic publish: concurrent processes compiling the
                # same digest race benignly to an identical file.
                os.replace(built, lib_path)
        except (OSError, subprocess.SubprocessError):
            return None
    try:
        lib = ctypes.CDLL(str(lib_path))
    except OSError:
        return None
    lib.hamming_matrix.restype = None
    lib.hamming_matrix.argtypes = [_U64_P, _LL, _U64_P, _LL, _LL_P]
    lib.mih_query_batch.restype = _LL
    lib.mih_query_batch.argtypes = [
        _U64_P, _LL,                      # hashes, n
        _LL_P, _LL_P, _LL_P,              # orders, lefts, rights
        _U8_P, _LL_P,                     # ball_bytes, ball_starts
        _LL, _LL, _LL,                    # qstart, qstop, radius
        _LL_P,                            # cand scratch
        _LL_P, _LL,                       # out, cap
        _LL_P,                            # counts
        ctypes.POINTER(_LL),              # out_len
    ]
    return lib


def _load_numba_kernels() -> dict | None:  # pragma: no cover - needs numba
    """JIT the Hamming matrix with numba when it is already installed.

    The MIH batch stays on the ``cc``/numpy path under this tier — its
    irregular gather/dedup loop gains little from nopython mode and a
    lot from the C version, so numba covers only the dense kernel.
    """
    try:
        import numba
    except ImportError:
        return None

    @numba.njit(cache=False)
    def matrix(a, b, out):
        for i in range(a.size):
            ai = a[i]
            for j in range(b.size):
                x = ai ^ b[j]
                count = 0
                while x:
                    x &= x - np.uint64(1)
                    count += 1
                out[i, j] = count

    try:  # trigger compilation now so failures demote the tier here
        probe = np.zeros(1, dtype=np.uint64)
        matrix(probe, probe, np.zeros((1, 1), dtype=np.int64))
    except Exception:
        return None
    return {"matrix": matrix}


def _resolve() -> dict:
    """The active tier: ``{"tier": name, "lib": ..., "numba": ...}``."""
    global _resolved
    with _lock:
        if _resolved is not None:
            return _resolved
        requested = os.environ.get(ENV_COMPILED, "").strip().lower()
        state: dict = {"tier": "numpy", "lib": None, "numba": None}
        if requested in _OFF_VALUES:
            _resolved = state
            return state
        want_numba = requested in _AUTO_VALUES or requested == "numba"
        want_cc = requested in _AUTO_VALUES or requested in ("cc", "native")
        if requested not in _AUTO_VALUES and not (want_numba or want_cc):
            warnings.warn(
                f"ignoring malformed {ENV_COMPILED}={requested!r}; expected "
                "0/1/auto/numba/cc; compiled tier stays off",
                RuntimeWarning,
                stacklevel=3,
            )
            _resolved = state
            return state
        if want_numba:
            kernels = _load_numba_kernels()
            if kernels is not None:
                state["tier"] = "numba"
                state["numba"] = kernels
        if want_cc and state["tier"] == "numpy":
            lib = _load_cc_library()
            if lib is not None:
                state["tier"] = "cc"
                state["lib"] = lib
        if state["tier"] == "numpy":
            warnings.warn(
                f"{ENV_COMPILED}={requested!r} requested a compiled tier "
                "but neither numba nor a C compiler is usable; falling "
                "back to the pure-numpy kernels (identical results)",
                RuntimeWarning,
                stacklevel=3,
            )
        _resolved = state
        return state


def tier() -> str:
    """The active implementation tier: ``"numba"``, ``"cc"``, or ``"numpy"``."""
    return _resolve()["tier"]


def enabled() -> bool:
    """True when a compiled implementation is active."""
    return tier() != "numpy"


def kernel_variant(kernel: str) -> str:
    """Cost-model kernel key for the active tier.

    Compiled and numpy implementations have very different throughputs;
    keying observations by tier keeps one tier's EWMA from steering the
    other's dispatch.
    """
    active = tier()
    return kernel if active == "numpy" else f"{kernel}+{active}"


def hamming_matrix(a: np.ndarray, b: np.ndarray) -> np.ndarray | None:
    """Compiled dense Hamming matrix, or ``None`` for the numpy path."""
    state = _resolve()
    if state["tier"] == "numpy":
        return None
    a = np.ascontiguousarray(a, dtype=np.uint64).reshape(-1)
    b = np.ascontiguousarray(b, dtype=np.uint64).reshape(-1)
    out = np.empty((a.size, b.size), dtype=np.int64)
    if a.size == 0 or b.size == 0:
        return out
    if state["tier"] == "numba":  # pragma: no cover - needs numba
        state["numba"]["matrix"](a, b, out)
        return out
    state["lib"].hamming_matrix(a, a.size, b, b.size, out.reshape(-1))
    return out


def mih_query_batch(
    hashes: np.ndarray,
    start: int,
    stop: int,
    radius: int,
    balls: list[np.ndarray],
) -> list[np.ndarray] | None:
    """Compiled MIH self-join rows, or ``None`` for the numpy path.

    ``balls[v]`` is the probe ball for byte value ``v`` (the
    ``_bytes_within`` table the numpy kernel already builds — passed in
    rather than imported to keep this module free of hashing imports).
    Output is exactly the numpy kernel's: one sorted duplicate-free
    ``int64`` position array per query in ``range(start, stop)``.
    """
    state = _resolve()
    lib = state["lib"]
    if lib is None:  # numpy tier, or numba (which has no MIH kernel)
        return None
    hashes = np.ascontiguousarray(hashes, dtype=np.uint64).reshape(-1)
    n = int(hashes.size)
    start, stop = int(start), int(stop)
    n_queries = max(0, stop - start)
    if n_queries == 0:
        return []
    # Per-chunk byte groups, identical to the numpy kernel's argsort +
    # searchsorted tables.  Bytes come from shifts, which equal the
    # little-endian view the numpy kernel uses on every platform this
    # library targets (and match the C kernel's shifts on all of them).
    orders = np.empty((8, n), dtype=np.int64)
    lefts = np.empty((8, 256), dtype=np.int64)
    rights = np.empty((8, 256), dtype=np.int64)
    all_bytes = np.arange(256)
    for c in range(8):
        chunk = ((hashes >> np.uint64(8 * c)) & np.uint64(0xFF)).astype(
            np.uint8
        )
        order = np.argsort(chunk, kind="stable").astype(np.int64)
        orders[c] = order
        sorted_bytes = chunk[order]
        lefts[c] = np.searchsorted(sorted_bytes, all_bytes, side="left")
        rights[c] = np.searchsorted(sorted_bytes, all_bytes, side="right")
    ball_starts = np.zeros(257, dtype=np.int64)
    ball_starts[1:] = np.cumsum([len(ball) for ball in balls])
    ball_bytes = (
        np.concatenate([np.asarray(ball, dtype=np.uint8) for ball in balls])
        if int(ball_starts[-1])
        else np.zeros(1, dtype=np.uint8)
    )
    # A position can be visited once per chunk whose byte lands in the
    # probe ball, so the per-query match scratch needs 8n at worst.
    cand = np.empty(8 * n, dtype=np.int64)
    counts = np.empty(n_queries, dtype=np.int64)
    # cap >= n guarantees progress: one query emits at most n positions.
    cap = max(8 * n_queries + 1024, n)
    flat_parts: list[np.ndarray] = []
    cursor = start
    while cursor < stop:
        out = np.empty(cap, dtype=np.int64)
        out_len = _LL(0)
        done = int(
            lib.mih_query_batch(
                hashes, n,
                orders.reshape(-1), lefts.reshape(-1), rights.reshape(-1),
                ball_bytes, ball_starts,
                cursor, stop, int(radius),
                cand,
                out, cap,
                counts[cursor - start :],
                ctypes.byref(out_len),
            )
        )
        flat_parts.append(out[: out_len.value])
        cursor = done
        cap *= 2
    flat = (
        flat_parts[0] if len(flat_parts) == 1 else np.concatenate(flat_parts)
    )
    offsets = np.zeros(n_queries + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return [flat[offsets[i] : offsets[i + 1]] for i in range(n_queries)]
