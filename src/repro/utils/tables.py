"""Plain-text table rendering for benchmark and example output.

The benchmark harness regenerates the paper's tables; this module renders
them in aligned monospace so the rows can be compared side by side with the
published ones.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["format_table", "print_table"]


def _cell(value: object, float_fmt: str) -> str:
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def format_table(
    rows: Iterable[Sequence[object]],
    headers: Sequence[str] | None = None,
    *,
    title: str | None = None,
    float_fmt: str = ".2f",
) -> str:
    """Render ``rows`` as an aligned monospace table.

    Parameters
    ----------
    rows:
        Iterable of row sequences; cells may be any type, floats are
        formatted with ``float_fmt``.
    headers:
        Optional column headers.
    title:
        Optional title line printed above the table.
    float_fmt:
        ``format()`` spec applied to float cells.
    """
    str_rows = [[_cell(v, float_fmt) for v in row] for row in rows]
    all_rows = ([list(headers)] if headers else []) + str_rows
    if not all_rows:
        return title or ""
    n_cols = max(len(r) for r in all_rows)
    widths = [0] * n_cols
    for row in all_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt_row(row: Sequence[str]) -> str:
        padded = [cell.ljust(widths[i]) for i, cell in enumerate(row)]
        return "  ".join(padded).rstrip()

    lines: list[str] = []
    if title:
        lines.append(title)
    if headers:
        lines.append(fmt_row(all_rows[0]))
        lines.append("  ".join("-" * w for w in widths))
        body = all_rows[1:]
    else:
        body = all_rows
    lines.extend(fmt_row(row) for row in body)
    return "\n".join(lines)


def print_table(
    rows: Iterable[Sequence[object]],
    headers: Sequence[str] | None = None,
    *,
    title: str | None = None,
    float_fmt: str = ".2f",
) -> None:
    """Print :func:`format_table` output followed by a blank line."""
    print(format_table(rows, headers, title=title, float_fmt=float_fmt))
    print()
