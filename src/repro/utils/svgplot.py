"""A minimal dependency-free SVG line-chart writer.

No plotting library is available offline, but several of the paper's
figures are line/CDF plots; this module renders multi-series charts as
standalone SVG files so the reproduced figures can be viewed in any
browser.  It intentionally supports only what the figures need: line
series, axes with ticks, a legend, and a title.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = ["Series", "LineChart"]

# A small colour-blind-safe cycle.
_PALETTE = ("#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377")


@dataclass(frozen=True)
class Series:
    """One plotted line: x/y data and a legend label."""

    x: np.ndarray
    y: np.ndarray
    label: str

    def __post_init__(self) -> None:
        x = np.asarray(self.x, dtype=np.float64)
        y = np.asarray(self.y, dtype=np.float64)
        if x.shape != y.shape or x.ndim != 1 or x.size < 2:
            raise ValueError("series needs aligned 1-D x/y with >= 2 points")
        object.__setattr__(self, "x", x)
        object.__setattr__(self, "y", y)


@dataclass
class LineChart:
    """A multi-series line chart rendered to SVG.

    >>> chart = LineChart(title="decay", x_label="d", y_label="r")
    >>> chart.add(np.array([0.0, 1.0]), np.array([1.0, 0.5]), "tau=1")
    >>> svg = chart.to_svg()
    >>> svg.startswith("<svg") and "tau=1" in svg
    True
    """

    title: str = ""
    x_label: str = ""
    y_label: str = ""
    width: int = 640
    height: int = 400
    series: list[Series] = field(default_factory=list)

    _MARGIN_LEFT = 64
    _MARGIN_RIGHT = 150
    _MARGIN_TOP = 40
    _MARGIN_BOTTOM = 48

    def add(self, x: np.ndarray, y: np.ndarray, label: str) -> "LineChart":
        """Append a series; returns self for chaining."""
        self.series.append(Series(x=x, y=y, label=label))
        return self

    # ------------------------------------------------------------------

    def _bounds(self) -> tuple[float, float, float, float]:
        xs = np.concatenate([s.x for s in self.series])
        ys = np.concatenate([s.y for s in self.series])
        x0, x1 = float(xs.min()), float(xs.max())
        y0, y1 = float(ys.min()), float(ys.max())
        if x1 == x0:
            x1 = x0 + 1.0
        if y1 == y0:
            y1 = y0 + 1.0
        pad = 0.04 * (y1 - y0)
        return x0, x1, y0 - pad, y1 + pad

    def _scale(self, bounds):
        x0, x1, y0, y1 = bounds
        plot_w = self.width - self._MARGIN_LEFT - self._MARGIN_RIGHT
        plot_h = self.height - self._MARGIN_TOP - self._MARGIN_BOTTOM

        def to_px(x: float, y: float) -> tuple[float, float]:
            px = self._MARGIN_LEFT + (x - x0) / (x1 - x0) * plot_w
            py = self.height - self._MARGIN_BOTTOM - (y - y0) / (y1 - y0) * plot_h
            return px, py

        return to_px

    @staticmethod
    def _ticks(lo: float, hi: float, n: int = 5) -> np.ndarray:
        raw = np.linspace(lo, hi, n)
        # Round to a friendly precision based on the span.
        span = hi - lo
        decimals = max(0, int(np.ceil(-np.log10(span / n))) + 1) if span > 0 else 0
        return np.round(raw, decimals)

    def to_svg(self) -> str:
        """Render the chart as an SVG document string."""
        if not self.series:
            raise ValueError("add at least one series before rendering")
        bounds = self._bounds()
        to_px = self._scale(bounds)
        x0, x1, y0, y1 = bounds
        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width}" '
            f'height="{self.height}" viewBox="0 0 {self.width} {self.height}">',
            f'<rect width="{self.width}" height="{self.height}" fill="white"/>',
        ]
        # Axes.
        ax0, ay0 = to_px(x0, y0)
        ax1, _ = to_px(x1, y0)
        _, ay1 = to_px(x0, y1)
        axis_style = 'stroke="#333" stroke-width="1"'
        parts.append(f'<line x1="{ax0}" y1="{ay0}" x2="{ax1}" y2="{ay0}" {axis_style}/>')
        parts.append(f'<line x1="{ax0}" y1="{ay0}" x2="{ax0}" y2="{ay1}" {axis_style}/>')
        text = 'font-family="sans-serif" font-size="12" fill="#333"'
        # Ticks.
        for tick in self._ticks(x0, x1):
            px, py = to_px(float(tick), y0)
            parts.append(f'<line x1="{px}" y1="{py}" x2="{px}" y2="{py + 5}" {axis_style}/>')
            parts.append(
                f'<text x="{px}" y="{py + 18}" text-anchor="middle" {text}>{tick:g}</text>'
            )
        for tick in self._ticks(y0, y1):
            px, py = to_px(x0, float(tick))
            parts.append(f'<line x1="{px - 5}" y1="{py}" x2="{px}" y2="{py}" {axis_style}/>')
            parts.append(
                f'<text x="{px - 8}" y="{py + 4}" text-anchor="end" {text}>{tick:g}</text>'
            )
        # Series.
        for index, series in enumerate(self.series):
            colour = _PALETTE[index % len(_PALETTE)]
            points = " ".join(
                f"{px:.1f},{py:.1f}"
                for px, py in (to_px(float(x), float(y)) for x, y in zip(series.x, series.y))
            )
            parts.append(
                f'<polyline points="{points}" fill="none" stroke="{colour}" '
                f'stroke-width="1.8"/>'
            )
            # Legend entry.
            ly = self._MARGIN_TOP + 18 * index
            lx = self.width - self._MARGIN_RIGHT + 12
            parts.append(
                f'<line x1="{lx}" y1="{ly}" x2="{lx + 18}" y2="{ly}" '
                f'stroke="{colour}" stroke-width="3"/>'
            )
            parts.append(
                f'<text x="{lx + 24}" y="{ly + 4}" {text}>{_escape(series.label)}</text>'
            )
        # Labels and title.
        if self.title:
            parts.append(
                f'<text x="{self.width / 2}" y="20" text-anchor="middle" '
                f'font-family="sans-serif" font-size="15" fill="#111">'
                f"{_escape(self.title)}</text>"
            )
        if self.x_label:
            parts.append(
                f'<text x="{(ax0 + ax1) / 2}" y="{self.height - 10}" '
                f'text-anchor="middle" {text}>{_escape(self.x_label)}</text>'
            )
        if self.y_label:
            cx, cy = 16, (ay0 + ay1) / 2
            parts.append(
                f'<text x="{cx}" y="{cy}" text-anchor="middle" {text} '
                f'transform="rotate(-90 {cx} {cy})">{_escape(self.y_label)}</text>'
            )
        parts.append("</svg>")
        return "\n".join(parts)

    def save(self, path: str | Path) -> Path:
        """Write the SVG to ``path`` and return it."""
        path = Path(path)
        path.write_text(self.to_svg())
        return path


def _escape(value: str) -> str:
    return (
        value.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")
    )
