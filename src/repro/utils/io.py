"""Persistence: post streams, occurrence tables, and stage checkpoints.

The paper released its (hashed) datasets alongside the pipeline; this
module provides the equivalent for the synthetic world — a compact NPZ
serialisation of post streams (hashes, never raw images, mirroring the
paper's privacy posture of keeping only URL + pHash) and a CSV export of
meme occurrences for external analysis.

It also holds the checkpoint format of the staged runner
(:mod:`repro.core.runner`): one file per stage, an integrity-checked
pickle so an interrupted multi-hour run can resume from the last
completed stage.  Layout::

    b"RPC1"                     magic + format version
    sha256(fingerprint+payload) 32 bytes, detects corruption/truncation
    len(fingerprint)            4 bytes big-endian
    fingerprint                 utf-8; binds the checkpoint to its
                                (world, config, stage) identity
    len(payload)                8 bytes big-endian
    payload                     pickled stage output

A checkpoint whose digest fails raises :class:`CheckpointError`; one
whose fingerprint differs from the resuming run raises
:class:`StaleCheckpointError` (the runner recomputes in both cases
rather than trusting bad state).
"""

from __future__ import annotations

import csv
import hashlib
import os
import pickle
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.communities.models import Post

__all__ = [
    "save_posts",
    "load_posts",
    "export_occurrences_csv",
    "CheckpointError",
    "CheckpointLock",
    "CheckpointLockError",
    "StaleCheckpointError",
    "save_checkpoint",
    "load_checkpoint",
]

_CHECKPOINT_MAGIC = b"RPC1"


class CheckpointError(RuntimeError):
    """The checkpoint file is corrupt, truncated, or not a checkpoint."""


class StaleCheckpointError(CheckpointError):
    """The checkpoint is intact but belongs to a different run identity."""


class CheckpointLockError(RuntimeError):
    """Another live run already holds the checkpoint directory's lock."""


class CheckpointLock:
    """Exclusive advisory lock on a checkpoint directory.

    Two concurrent runs sharing one ``--checkpoint-dir`` would
    interleave ``.ckpt`` writes — each run's atomic per-file rename is
    safe, but the *set* of files would mix two runs' stages into one
    resumable state.  The staged runner therefore takes this lock for
    the duration of :meth:`repro.core.runner.PipelineRunner.run`; a
    second run fails fast with :class:`CheckpointLockError` instead of
    corrupting shared state.

    The lock is a ``.lock`` file created with ``O_CREAT | O_EXCL``
    (atomic on POSIX and Windows) holding the owner's PID.  A lock
    whose PID is no longer alive, or whose mtime is older than
    ``stale_after_s`` (a crashed run on another host whose PID got
    recycled), is *stale*: it is broken and re-acquired.

    Usable as a context manager::

        with CheckpointLock(checkpoint_dir):
            ...
    """

    def __init__(
        self, directory: str | Path, *, stale_after_s: float = 24 * 3600.0
    ) -> None:
        if stale_after_s <= 0:
            raise ValueError("stale_after_s must be positive")
        self.path = Path(directory) / ".lock"
        self.stale_after_s = stale_after_s
        self._held = False

    @property
    def held(self) -> bool:
        return self._held

    def _owner_pid(self) -> int | None:
        try:
            return int(self.path.read_text().strip() or 0) or None
        except (OSError, ValueError):
            return None

    def _is_stale(self) -> bool:
        pid = self._owner_pid()
        if pid is not None:
            try:
                os.kill(pid, 0)
            except ProcessLookupError:
                return True  # owner died without releasing
            except PermissionError:
                pass  # alive, owned by someone else
            except OSError:
                pass  # unknown: fall through to the mtime check
        try:
            age = time.time() - self.path.stat().st_mtime
        except OSError:
            return False  # vanished: acquire() will just retry
        return age > self.stale_after_s

    def acquire(self) -> "CheckpointLock":
        """Take the lock or raise :class:`CheckpointLockError`.

        A stale lock (dead PID, or mtime past ``stale_after_s``) is
        removed and acquisition retried once.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        for attempt in range(2):
            try:
                fd = os.open(
                    self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY
                )
            except FileExistsError:
                if attempt == 0 and self._is_stale():
                    try:
                        self.path.unlink()
                    except OSError:
                        pass
                    continue
                owner = self._owner_pid()
                raise CheckpointLockError(
                    f"checkpoint directory {self.path.parent} is locked by "
                    f"{'pid ' + str(owner) if owner else 'another run'} "
                    f"({self.path}); concurrent runs would interleave "
                    "checkpoint writes — wait for it to finish, point this "
                    "run at a different --checkpoint-dir, or delete the "
                    "lock file if you are sure the owner is gone"
                ) from None
            with os.fdopen(fd, "w") as handle:
                handle.write(str(os.getpid()))
            self._held = True
            return self
        raise CheckpointLockError(  # pragma: no cover - second race loser
            f"could not acquire {self.path} after breaking a stale lock"
        )

    def release(self) -> None:
        """Drop the lock (idempotent; only removes a lock we hold)."""
        if not self._held:
            return
        self._held = False
        try:
            self.path.unlink()
        except OSError:
            pass

    def __enter__(self) -> "CheckpointLock":
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()


def save_checkpoint(path: str | Path, payload: object, *, fingerprint: str) -> None:
    """Atomically write ``payload`` as an integrity-checked checkpoint.

    The write goes to a uniquely-named sibling temp file first (fsynced,
    then renamed into place), so a crash mid-write never leaves a
    half-written file under the checkpoint's name — and two processes
    writing the same entry never trample each other's temp file.  The
    latter matters for the content-addressed cache, which (unlike the
    stage-checkpoint directory) is shared between runs without a
    :class:`CheckpointLock`: concurrent writers of one key race only on
    the final rename, and both rename a complete, identical blob.
    """
    path = Path(path)
    fingerprint_bytes = fingerprint.encode("utf-8")
    payload_bytes = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(fingerprint_bytes + payload_bytes).digest()
    blob = (
        _CHECKPOINT_MAGIC
        + digest
        + len(fingerprint_bytes).to_bytes(4, "big")
        + fingerprint_bytes
        + len(payload_bytes).to_bytes(8, "big")
        + payload_bytes
    )
    fd, temp_name = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_name, path)
    except BaseException:
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise


def load_checkpoint(path: str | Path, *, fingerprint: str | None = None) -> object:
    """Load a checkpoint written by :func:`save_checkpoint`.

    Raises
    ------
    CheckpointError
        On bad magic, truncation, or digest mismatch.
    StaleCheckpointError
        When ``fingerprint`` is given and differs from the stored one.
    """
    path = Path(path)
    blob = path.read_bytes()
    if len(blob) < len(_CHECKPOINT_MAGIC) + 32 + 4:
        raise CheckpointError(f"{path}: truncated checkpoint header")
    if blob[:4] != _CHECKPOINT_MAGIC:
        raise CheckpointError(f"{path}: not a checkpoint file")
    digest = blob[4:36]
    cursor = 36
    fp_len = int.from_bytes(blob[cursor : cursor + 4], "big")
    cursor += 4
    if len(blob) < cursor + fp_len + 8:
        raise CheckpointError(f"{path}: truncated checkpoint fingerprint")
    stored_fingerprint = blob[cursor : cursor + fp_len]
    cursor += fp_len
    payload_len = int.from_bytes(blob[cursor : cursor + 8], "big")
    cursor += 8
    payload_bytes = blob[cursor : cursor + payload_len]
    if len(payload_bytes) != payload_len or len(blob) != cursor + payload_len:
        raise CheckpointError(f"{path}: truncated or padded checkpoint payload")
    if hashlib.sha256(stored_fingerprint + payload_bytes).digest() != digest:
        raise CheckpointError(f"{path}: checkpoint digest mismatch (corrupted)")
    if fingerprint is not None and stored_fingerprint != fingerprint.encode("utf-8"):
        raise StaleCheckpointError(
            f"{path}: checkpoint belongs to a different run "
            f"({stored_fingerprint.decode('utf-8', 'replace')!r})"
        )
    try:
        return pickle.loads(payload_bytes)
    except Exception as error:  # digest passed but unpicklable payload
        raise CheckpointError(f"{path}: undecodable checkpoint payload: {error}")

_NONE_SCORE = np.iinfo(np.int64).min


def save_posts(posts: list[Post], path: str | Path) -> None:
    """Serialise posts to a compressed NPZ file.

    Only metadata is stored (community, timestamp, pHash, image id,
    score, subreddit, ground-truth template/root); images were already
    discarded at hashing time, as in the paper's Step 1.
    """
    path = Path(path)
    np.savez_compressed(
        path,
        community=np.array([p.community for p in posts], dtype=np.str_),
        timestamp=np.array([p.timestamp for p in posts], dtype=np.float64),
        phash=np.array([p.phash for p in posts], dtype=np.uint64),
        image_id=np.array([p.image_id for p in posts], dtype=np.str_),
        score=np.array(
            [_NONE_SCORE if p.score is None else p.score for p in posts],
            dtype=np.int64,
        ),
        subreddit=np.array(
            ["" if p.subreddit is None else p.subreddit for p in posts],
            dtype=np.str_,
        ),
        template_name=np.array(
            ["" if p.template_name is None else p.template_name for p in posts],
            dtype=np.str_,
        ),
        root_community=np.array(
            ["" if p.root_community is None else p.root_community for p in posts],
            dtype=np.str_,
        ),
    )


def load_posts(path: str | Path) -> list[Post]:
    """Inverse of :func:`save_posts`."""
    with np.load(Path(path), allow_pickle=False) as data:
        n = data["timestamp"].size
        return [
            Post(
                community=str(data["community"][i]),
                timestamp=float(data["timestamp"][i]),
                phash=np.uint64(data["phash"][i]),
                image_id=str(data["image_id"][i]),
                score=(
                    None
                    if int(data["score"][i]) == _NONE_SCORE
                    else int(data["score"][i])
                ),
                subreddit=str(data["subreddit"][i]) or None,
                template_name=str(data["template_name"][i]) or None,
                root_community=str(data["root_community"][i]) or None,
            )
            for i in range(n)
        ]


def export_occurrences_csv(result, path: str | Path) -> int:
    """Write the Step 6 occurrence table as CSV; returns rows written.

    Columns: community, timestamp, phash (hex), cluster (community:id),
    entry, racist, politics, score, subreddit.
    """
    path = Path(path)
    occurrences = result.occurrences
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "community",
                "timestamp",
                "phash",
                "cluster",
                "entry",
                "racist",
                "politics",
                "score",
                "subreddit",
            ]
        )
        for row, post in enumerate(occurrences.posts):
            key = result.cluster_keys[occurrences.cluster_indices[row]]
            writer.writerow(
                [
                    post.community,
                    f"{post.timestamp:.6f}",
                    format(int(post.phash), "016x"),
                    str(key),
                    occurrences.entry_names[row],
                    int(occurrences.is_racist[row]),
                    int(occurrences.is_politics[row]),
                    "" if post.score is None else post.score,
                    post.subreddit or "",
                ]
            )
    return len(occurrences.posts)
