"""Persistence: save and load post streams and occurrence tables.

The paper released its (hashed) datasets alongside the pipeline; this
module provides the equivalent for the synthetic world — a compact NPZ
serialisation of post streams (hashes, never raw images, mirroring the
paper's privacy posture of keeping only URL + pHash) and a CSV export of
meme occurrences for external analysis.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.communities.models import Post

__all__ = ["save_posts", "load_posts", "export_occurrences_csv"]

_NONE_SCORE = np.iinfo(np.int64).min


def save_posts(posts: list[Post], path: str | Path) -> None:
    """Serialise posts to a compressed NPZ file.

    Only metadata is stored (community, timestamp, pHash, image id,
    score, subreddit, ground-truth template/root); images were already
    discarded at hashing time, as in the paper's Step 1.
    """
    path = Path(path)
    np.savez_compressed(
        path,
        community=np.array([p.community for p in posts], dtype=np.str_),
        timestamp=np.array([p.timestamp for p in posts], dtype=np.float64),
        phash=np.array([p.phash for p in posts], dtype=np.uint64),
        image_id=np.array([p.image_id for p in posts], dtype=np.str_),
        score=np.array(
            [_NONE_SCORE if p.score is None else p.score for p in posts],
            dtype=np.int64,
        ),
        subreddit=np.array(
            ["" if p.subreddit is None else p.subreddit for p in posts],
            dtype=np.str_,
        ),
        template_name=np.array(
            ["" if p.template_name is None else p.template_name for p in posts],
            dtype=np.str_,
        ),
        root_community=np.array(
            ["" if p.root_community is None else p.root_community for p in posts],
            dtype=np.str_,
        ),
    )


def load_posts(path: str | Path) -> list[Post]:
    """Inverse of :func:`save_posts`."""
    with np.load(Path(path), allow_pickle=False) as data:
        n = data["timestamp"].size
        return [
            Post(
                community=str(data["community"][i]),
                timestamp=float(data["timestamp"][i]),
                phash=np.uint64(data["phash"][i]),
                image_id=str(data["image_id"][i]),
                score=(
                    None
                    if int(data["score"][i]) == _NONE_SCORE
                    else int(data["score"][i])
                ),
                subreddit=str(data["subreddit"][i]) or None,
                template_name=str(data["template_name"][i]) or None,
                root_community=str(data["root_community"][i]) or None,
            )
            for i in range(n)
        ]


def export_occurrences_csv(result, path: str | Path) -> int:
    """Write the Step 6 occurrence table as CSV; returns rows written.

    Columns: community, timestamp, phash (hex), cluster (community:id),
    entry, racist, politics, score, subreddit.
    """
    path = Path(path)
    occurrences = result.occurrences
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(
            [
                "community",
                "timestamp",
                "phash",
                "cluster",
                "entry",
                "racist",
                "politics",
                "score",
                "subreddit",
            ]
        )
        for row, post in enumerate(occurrences.posts):
            key = result.cluster_keys[occurrences.cluster_indices[row]]
            writer.writerow(
                [
                    post.community,
                    f"{post.timestamp:.6f}",
                    format(int(post.phash), "016x"),
                    str(key),
                    occurrences.entry_names[row],
                    int(occurrences.is_racist[row]),
                    int(occurrences.is_politics[row]),
                    "" if post.score is None else post.score,
                    post.subreddit or "",
                ]
            )
    return len(occurrences.posts)
