"""The ``Image`` type: a grayscale raster backed by a numpy array.

Images are 2-D ``float32`` arrays with values in ``[0, 1]``.  Grayscale is
sufficient for the whole pipeline — pHash (the only consumer of pixels in
the paper's Steps 1–6) converts to grayscale before hashing — and keeps the
synthetic world cheap enough to run tens of thousands of images per test.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Image", "blank", "clip01", "resize", "to_grayscale_array"]

DEFAULT_SIZE = 64

# An Image is simply a 2-D float32 array in [0, 1]; the alias documents
# intent at call sites without wrapping numpy in a class.
Image = np.ndarray


def blank(
    height: int = DEFAULT_SIZE,
    width: int | None = None,
    *,
    fill: float = 0.0,
) -> Image:
    """Return a new ``height`` x ``width`` image filled with ``fill``."""
    if width is None:
        width = height
    if height <= 0 or width <= 0:
        raise ValueError(f"image dimensions must be positive, got {height}x{width}")
    return np.full((height, width), np.float32(fill), dtype=np.float32)


def clip01(image: np.ndarray) -> Image:
    """Clip pixel values into ``[0, 1]`` and cast to ``float32``."""
    return np.clip(image, 0.0, 1.0).astype(np.float32)


def to_grayscale_array(image: np.ndarray) -> Image:
    """Coerce arbitrary array input into a valid grayscale image.

    Accepts 2-D arrays (already grayscale) or 3-D ``(H, W, C)`` arrays,
    which are averaged over channels.  Integer inputs are assumed to be in
    ``[0, 255]``.
    """
    arr = np.asarray(image)
    if arr.ndim == 3:
        arr = arr.mean(axis=2)
    if arr.ndim != 2:
        raise ValueError(f"expected 2-D or 3-D array, got ndim={arr.ndim}")
    arr = arr.astype(np.float64)
    if np.issubdtype(np.asarray(image).dtype, np.integer):
        arr = arr / 255.0
    return clip01(arr)


def resize(image: np.ndarray, height: int, width: int | None = None) -> Image:
    """Resize with bilinear interpolation (antialiased by pre-pooling).

    Downscales first block-average to the nearest integer factor (a cheap
    antialias that keeps pHash stable, mirroring what PIL's ``ANTIALIAS``
    did for the paper's pipeline), then maps the remainder bilinearly.
    """
    if width is None:
        width = height
    if height <= 0 or width <= 0:
        raise ValueError(f"target dimensions must be positive, got {height}x{width}")
    src = np.asarray(image, dtype=np.float64)
    if src.ndim != 2:
        raise ValueError("resize expects a 2-D grayscale image")

    # Integer block-average pre-pooling when shrinking by >= 2x.
    fy = src.shape[0] // height
    fx = src.shape[1] // width
    if fy >= 2 or fx >= 2:
        fy = max(fy, 1)
        fx = max(fx, 1)
        ny = (src.shape[0] // fy) * fy
        nx = (src.shape[1] // fx) * fx
        src = src[:ny, :nx].reshape(ny // fy, fy, nx // fx, fx).mean(axis=(1, 3))

    if src.shape == (height, width):
        return clip01(src)
    return clip01(_bilinear(src, height, width))


def _bilinear(src: np.ndarray, height: int, width: int) -> np.ndarray:
    """Plain bilinear resample of ``src`` to ``(height, width)``."""
    src_h, src_w = src.shape
    # Pixel-centre alignment: output centre u maps to input centre.
    ys = (np.arange(height) + 0.5) * src_h / height - 0.5
    xs = (np.arange(width) + 0.5) * src_w / width - 0.5
    ys = np.clip(ys, 0, src_h - 1)
    xs = np.clip(xs, 0, src_w - 1)
    y0 = np.floor(ys).astype(int)
    x0 = np.floor(xs).astype(int)
    y1 = np.minimum(y0 + 1, src_h - 1)
    x1 = np.minimum(x0 + 1, src_w - 1)
    wy = (ys - y0)[:, None]
    wx = (xs - x0)[None, :]
    top = src[np.ix_(y0, x0)] * (1 - wx) + src[np.ix_(y0, x1)] * wx
    bottom = src[np.ix_(y1, x0)] * (1 - wx) + src[np.ix_(y1, x1)] * wx
    return top * (1 - wy) + bottom * wy
