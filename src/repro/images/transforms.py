"""Variant transforms: how meme variants differ from their template.

Real meme variants add captions, crop, recompress, brighten, or paste small
overlays onto a base image.  Each transform here reproduces one of those
operations on the synthetic rasters; :func:`random_variant` composes a
plausible mix.  The transforms are calibrated so that a typical variant
stays within pHash Hamming distance ~8 of its template (the paper's cluster
threshold) while heavy stacks can push beyond it, producing the "branching"
of memes into sub-variants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.images.raster import Image, clip01, resize

__all__ = [
    "add_noise",
    "adjust_brightness",
    "adjust_contrast",
    "crop_and_resize",
    "add_caption_bar",
    "overlay_patch",
    "mirror",
    "posterize",
    "VariantSpec",
    "random_variant",
]


def add_noise(image: Image, rng: np.random.Generator, sigma: float = 0.02) -> Image:
    """Additive Gaussian pixel noise (sensor noise / recompression grain)."""
    if sigma < 0:
        raise ValueError("sigma must be non-negative")
    return clip01(image + rng.normal(0.0, sigma, size=image.shape))


def adjust_brightness(image: Image, delta: float) -> Image:
    """Shift all pixel values by ``delta`` (positive = brighter)."""
    return clip01(np.asarray(image, dtype=np.float64) + delta)


def adjust_contrast(image: Image, factor: float) -> Image:
    """Scale contrast around the image mean by ``factor``."""
    if factor < 0:
        raise ValueError("contrast factor must be non-negative")
    arr = np.asarray(image, dtype=np.float64)
    mean = arr.mean()
    return clip01(mean + (arr - mean) * factor)


def crop_and_resize(image: Image, margin: float) -> Image:
    """Crop a centred window with fractional ``margin`` and resize back.

    ``margin=0.1`` removes 10% from every side, as when a variant is
    re-screenshotted or trimmed.
    """
    if not 0 <= margin < 0.5:
        raise ValueError("margin must be in [0, 0.5)")
    h, w = image.shape
    dy = int(round(h * margin))
    dx = int(round(w * margin))
    cropped = image[dy : h - dy or None, dx : w - dx or None]
    return resize(cropped, h, w)


def add_caption_bar(
    image: Image,
    rng: np.random.Generator,
    *,
    position: str = "top",
    height: float = 0.15,
) -> Image:
    """Paste a caption band (white bar with dark text-like blocks).

    This is the image-macro operation: memes gain top/bottom text.  The
    "text" is a row of dark blocks with random word lengths.
    """
    if position not in ("top", "bottom"):
        raise ValueError("position must be 'top' or 'bottom'")
    if not 0 < height < 0.5:
        raise ValueError("height must be in (0, 0.5)")
    out = np.array(image, dtype=np.float32)
    h, w = out.shape
    bar_h = max(int(round(h * height)), 2)
    rows = slice(0, bar_h) if position == "top" else slice(h - bar_h, h)
    out[rows, :] = 1.0
    # Text blocks: a single line of dark "words" across the bar.
    y0 = (bar_h // 4) if position == "top" else h - bar_h + bar_h // 4
    text_h = max(bar_h // 2, 1)
    x = int(w * 0.05)
    while x < int(w * 0.95):
        word = int(rng.integers(2, max(w // 8, 3)))
        stop = min(x + word, int(w * 0.95))
        out[y0 : y0 + text_h, x:stop] = float(rng.uniform(0.0, 0.25))
        x = stop + max(int(w * 0.02), 1)
    return out


def overlay_patch(
    image: Image,
    rng: np.random.Generator,
    *,
    size: float = 0.2,
) -> Image:
    """Paste a small random-value square patch (a pasted-in element)."""
    if not 0 < size < 1:
        raise ValueError("size must be in (0, 1)")
    out = np.array(image, dtype=np.float32)
    h, w = out.shape
    ph = max(int(h * size), 1)
    pw = max(int(w * size), 1)
    y = int(rng.integers(0, max(h - ph, 1)))
    x = int(rng.integers(0, max(w - pw, 1)))
    out[y : y + ph, x : x + pw] = float(rng.uniform(0.0, 1.0))
    return out


def mirror(image: Image) -> Image:
    """Horizontal flip."""
    return np.ascontiguousarray(image[:, ::-1], dtype=np.float32)


def posterize(image: Image, levels: int = 8) -> Image:
    """Quantise pixel values to ``levels`` bins (palette reduction)."""
    if levels < 2:
        raise ValueError("levels must be >= 2")
    arr = np.asarray(image, dtype=np.float64)
    return clip01(np.round(arr * (levels - 1)) / (levels - 1))


@dataclass(frozen=True)
class VariantSpec:
    """How strongly :func:`random_variant` perturbs a template.

    ``light`` variants stay within the clustering threshold of the
    template; ``heavy`` variants may branch into a separate cluster,
    mirroring the sub-meme branching described in the paper's Section 2.1.
    """

    noise_sigma: float = 0.02
    brightness_range: float = 0.06
    contrast_range: float = 0.12
    crop_max: float = 0.04
    caption_probability: float = 0.35
    overlay_probability: float = 0.15
    mirror_probability: float = 0.0
    posterize_probability: float = 0.1

    extras: tuple[str, ...] = field(default=(), repr=False)

    @classmethod
    def light(cls) -> "VariantSpec":
        return cls()

    @classmethod
    def heavy(cls) -> "VariantSpec":
        return cls(
            noise_sigma=0.05,
            brightness_range=0.15,
            contrast_range=0.3,
            crop_max=0.12,
            caption_probability=0.7,
            overlay_probability=0.5,
            mirror_probability=0.25,
            posterize_probability=0.25,
        )


def random_variant(
    image: Image,
    rng: np.random.Generator,
    spec: VariantSpec | None = None,
) -> Image:
    """Produce a meme variant of ``image`` under ``spec`` (default light)."""
    spec = spec or VariantSpec.light()
    out = np.array(image, dtype=np.float32)
    if spec.mirror_probability and rng.random() < spec.mirror_probability:
        out = mirror(out)
    if spec.crop_max > 0:
        out = crop_and_resize(out, float(rng.uniform(0.0, spec.crop_max)))
    if spec.brightness_range > 0:
        out = adjust_brightness(
            out, float(rng.uniform(-spec.brightness_range, spec.brightness_range))
        )
    if spec.contrast_range > 0:
        out = adjust_contrast(
            out, float(1.0 + rng.uniform(-spec.contrast_range, spec.contrast_range))
        )
    if rng.random() < spec.caption_probability:
        position = "top" if rng.random() < 0.5 else "bottom"
        out = add_caption_bar(out, rng, position=position)
    if rng.random() < spec.overlay_probability:
        out = overlay_patch(out, rng, size=float(rng.uniform(0.1, 0.25)))
    if rng.random() < spec.posterize_probability:
        out = posterize(out, levels=int(rng.integers(4, 16)))
    if spec.noise_sigma > 0:
        out = add_noise(out, rng, sigma=spec.noise_sigma)
    return out
