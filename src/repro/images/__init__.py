"""Synthetic raster-image substrate.

The paper processes 160M crawled images.  Offline, we substitute a
procedural image world: a library of "meme templates" (composited
geometric/texture scenes, each with a stable visual identity) plus variant
transforms (noise, brightness, crops, caption bars, overlays) that mimic
how meme variants differ from their template.  The substitution preserves
what the pipeline actually consumes — pixel structure with near-duplicate
geometry under pHash — as documented in DESIGN.md.
"""

from repro.images.raster import (
    Image,
    blank,
    clip01,
    resize,
    to_grayscale_array,
)
from repro.images.screenshots import render_screenshot
from repro.images.templates import MemeTemplate, TemplateLibrary
from repro.images.transforms import (
    VariantSpec,
    add_caption_bar,
    add_noise,
    adjust_brightness,
    adjust_contrast,
    crop_and_resize,
    mirror,
    overlay_patch,
    posterize,
    random_variant,
)

__all__ = [
    "Image",
    "blank",
    "clip01",
    "resize",
    "to_grayscale_array",
    "MemeTemplate",
    "TemplateLibrary",
    "VariantSpec",
    "add_noise",
    "adjust_brightness",
    "adjust_contrast",
    "crop_and_resize",
    "add_caption_bar",
    "overlay_patch",
    "mirror",
    "posterize",
    "random_variant",
    "render_screenshot",
]
