"""Procedural drawing primitives used to compose synthetic scenes.

All functions draw *in place* on a grayscale image (2-D float32 array in
``[0, 1]``) and also return it, so calls can be chained.  Coordinates are
fractional (0..1 of the image extent) so the same scene renders at any
resolution.
"""

from __future__ import annotations

import numpy as np
from scipy.ndimage import uniform_filter

from repro.images.raster import Image, clip01

__all__ = [
    "fill_gradient",
    "fill_checkerboard",
    "draw_rect",
    "draw_ellipse",
    "draw_line",
    "draw_polygon",
    "draw_texture",
]


def _grid(image: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Fractional (y, x) coordinate grids for ``image``."""
    h, w = image.shape
    ys = (np.arange(h) + 0.5) / h
    xs = (np.arange(w) + 0.5) / w
    return np.meshgrid(ys, xs, indexing="ij")


def fill_gradient(image: Image, start: float, stop: float, angle: float = 0.0) -> Image:
    """Fill with a linear gradient from ``start`` to ``stop`` along ``angle``.

    ``angle`` is in radians; 0 is left-to-right, pi/2 is top-to-bottom.
    """
    yy, xx = _grid(image)
    t = xx * np.cos(angle) + yy * np.sin(angle)
    t = (t - t.min()) / max(t.max() - t.min(), 1e-12)
    image[:] = clip01(start + (stop - start) * t)
    return image


def fill_checkerboard(image: Image, cells: int, low: float, high: float) -> Image:
    """Fill with a ``cells`` x ``cells`` checkerboard of ``low``/``high``."""
    if cells <= 0:
        raise ValueError("cells must be positive")
    yy, xx = _grid(image)
    parity = (np.floor(yy * cells) + np.floor(xx * cells)) % 2
    image[:] = np.where(parity > 0.5, np.float32(high), np.float32(low))
    return image


def draw_rect(
    image: Image,
    y: float,
    x: float,
    h: float,
    w: float,
    value: float,
    *,
    alpha: float = 1.0,
) -> Image:
    """Blend a filled axis-aligned rectangle at fractional (y, x, h, w)."""
    yy, xx = _grid(image)
    mask = (yy >= y) & (yy < y + h) & (xx >= x) & (xx < x + w)
    image[mask] = clip01(image[mask] * (1 - alpha) + value * alpha)
    return image


def draw_ellipse(
    image: Image,
    cy: float,
    cx: float,
    ry: float,
    rx: float,
    value: float,
    *,
    alpha: float = 1.0,
) -> Image:
    """Blend a filled ellipse centred at (cy, cx) with radii (ry, rx)."""
    if ry <= 0 or rx <= 0:
        raise ValueError("ellipse radii must be positive")
    yy, xx = _grid(image)
    mask = ((yy - cy) / ry) ** 2 + ((xx - cx) / rx) ** 2 <= 1.0
    image[mask] = clip01(image[mask] * (1 - alpha) + value * alpha)
    return image


def draw_line(
    image: Image,
    y0: float,
    x0: float,
    y1: float,
    x1: float,
    value: float,
    *,
    thickness: float = 0.02,
) -> Image:
    """Draw a thick line segment between two fractional endpoints."""
    yy, xx = _grid(image)
    dy, dx = y1 - y0, x1 - x0
    length_sq = dy * dy + dx * dx
    if length_sq < 1e-12:
        return draw_ellipse(image, y0, x0, thickness, thickness, value)
    t = ((yy - y0) * dy + (xx - x0) * dx) / length_sq
    t = np.clip(t, 0.0, 1.0)
    dist_sq = (yy - (y0 + t * dy)) ** 2 + (xx - (x0 + t * dx)) ** 2
    mask = dist_sq <= thickness * thickness
    image[mask] = np.float32(value)
    return image


def draw_polygon(
    image: Image,
    vertices: np.ndarray,
    value: float,
    *,
    alpha: float = 1.0,
) -> Image:
    """Blend a filled convex/concave polygon given ``(N, 2)`` (y, x) vertices.

    Uses the even-odd (crossing-number) rule, vectorised over pixels.
    """
    verts = np.asarray(vertices, dtype=np.float64)
    if verts.ndim != 2 or verts.shape[1] != 2 or len(verts) < 3:
        raise ValueError("vertices must be an (N>=3, 2) array of (y, x)")
    yy, xx = _grid(image)
    inside = np.zeros(image.shape, dtype=bool)
    n = len(verts)
    for i in range(n):
        y_i, x_i = verts[i]
        y_j, x_j = verts[(i + 1) % n]
        crosses = (y_i > yy) != (y_j > yy)
        denominator = np.where(crosses, y_j - y_i, 1.0)
        x_at = x_i + (yy - y_i) * (x_j - x_i) / denominator
        inside ^= crosses & (xx < x_at)
    image[inside] = clip01(image[inside] * (1 - alpha) + value * alpha)
    return image


def draw_texture(
    image: Image,
    rng: np.random.Generator,
    *,
    scale: int = 8,
    strength: float = 0.1,
) -> Image:
    """Add smooth value noise (a cheap Perlin substitute) of the given scale."""
    if scale <= 0:
        raise ValueError("scale must be positive")
    h, w = image.shape
    coarse = rng.random((max(h // scale, 1), max(w // scale, 1)))
    # Upsample by repetition then smooth with a separable 3x3 box blur.
    up = np.kron(coarse, np.ones((scale, scale)))[:h, :w]
    if up.shape != (h, w):
        padded = np.zeros((h, w))
        padded[: up.shape[0], : up.shape[1]] = up
        up = padded
    up = uniform_filter(up, size=3, mode="nearest")
    image[:] = clip01(image + (up - 0.5) * 2 * strength)
    return image
