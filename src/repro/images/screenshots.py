"""Synthetic social-network screenshots.

KYM galleries are contaminated with screenshots of posts *about* a meme
(paper Step 4); a CNN filters them out.  This module renders the synthetic
equivalent: a light page with a header band, avatar disc, and rows of
text-like bars — a visual signature sharply different from organic meme
images, which is exactly what the classifier learns to separate.
"""

from __future__ import annotations

import numpy as np

from repro.images import draw
from repro.images.raster import DEFAULT_SIZE, Image, blank

__all__ = ["render_screenshot", "PLATFORM_STYLES"]

# Per-platform style knobs: (page value, header value, dark mode prob.)
PLATFORM_STYLES: dict[str, tuple[float, float, float]] = {
    "twitter": (0.97, 0.55, 0.3),
    "4chan": (0.88, 0.75, 0.0),
    "reddit": (0.95, 0.80, 0.2),
    "facebook": (0.96, 0.45, 0.1),
    "instagram": (0.98, 0.90, 0.1),
}


def render_screenshot(
    rng: np.random.Generator,
    *,
    platform: str | None = None,
    size: int = DEFAULT_SIZE,
) -> Image:
    """Render a synthetic screenshot of a social-network post.

    Parameters
    ----------
    rng:
        Source of layout randomness (each call yields a distinct post).
    platform:
        One of :data:`PLATFORM_STYLES`; random when omitted.
    size:
        Output resolution (square).
    """
    if platform is None:
        platform = str(rng.choice(sorted(PLATFORM_STYLES)))
    if platform not in PLATFORM_STYLES:
        raise ValueError(f"unknown platform {platform!r}")
    page, header, dark_prob = PLATFORM_STYLES[platform]
    dark = rng.random() < dark_prob
    if dark:
        page, header = 1.0 - page, 1.0 - header
    text_value = 0.15 if not dark else 0.85

    image = blank(size, fill=page)
    # Header band of varying height (different clients crop differently).
    header_height = float(rng.uniform(0.06, 0.2))
    draw.draw_rect(image, 0.0, 0.0, header_height, 1.0, header)
    # Avatar disc + handle bar at a jittered position.
    avatar_y = header_height + float(rng.uniform(0.03, 0.1))
    avatar_x = float(rng.uniform(0.06, 0.16))
    avatar_r = float(rng.uniform(0.035, 0.07))
    draw.draw_ellipse(image, avatar_y, avatar_x, avatar_r, avatar_r, text_value)
    draw.draw_rect(
        image,
        avatar_y - 0.02,
        avatar_x + avatar_r + 0.04,
        0.035,
        float(rng.uniform(0.2, 0.45)),
        text_value,
    )
    # Body: rows of text bars with ragged right edges, variable pitch.
    y = avatar_y + avatar_r + float(rng.uniform(0.03, 0.09))
    pitch = float(rng.uniform(0.06, 0.11))
    bar_height = float(rng.uniform(0.03, 0.055))
    n_lines = int(rng.integers(2, 8))
    for _ in range(n_lines):
        width = float(rng.uniform(0.4, 0.9))
        draw.draw_rect(image, y, 0.06, bar_height, width, text_value, alpha=0.9)
        y += pitch
        if y > 0.76:
            break
    # Some posts embed a media preview block.
    if rng.random() < 0.4:
        block_h = float(rng.uniform(0.1, min(0.82 - y, 0.3))) if y < 0.7 else 0.0
        if block_h > 0.05:
            draw.draw_rect(
                image, y, 0.08, block_h, 0.84, float(rng.uniform(0.3, 0.7))
            )
            draw.draw_texture(image, rng, scale=6, strength=0.08)
    # Engagement row: small glyphs near the bottom, variable count.
    n_glyphs = int(rng.integers(3, 6))
    for k in range(n_glyphs):
        draw.draw_rect(
            image,
            0.88,
            0.08 + (0.8 / n_glyphs) * k,
            0.04,
            0.05,
            text_value,
            alpha=0.8,
        )
    # Light page noise so screenshots are not pixel-identical.
    image[:] = np.clip(
        image + rng.normal(0.0, 0.01, size=image.shape), 0.0, 1.0
    ).astype(np.float32)
    return image
