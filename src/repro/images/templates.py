"""Procedural meme templates: the visual identities of the synthetic world.

A *template* corresponds to a meme's base image (e.g. "Smug Frog").
Templates within the same *family* (e.g. the frog memes of the paper's
Section 4.1.2) share a base scene and differ by added elements, so their
pHashes are closer to each other than to unrelated templates — giving the
phylogeny analyses (Fig. 6/7) real structure to recover.  Renders are
deterministic: the same template always produces the same pixels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.images import draw
from repro.images.raster import DEFAULT_SIZE, Image, blank

__all__ = ["SceneOp", "MemeTemplate", "TemplateLibrary"]


@dataclass(frozen=True)
class SceneOp:
    """One drawing operation of a scene: primitive name + parameters."""

    kind: str
    params: tuple[float, ...]

    def apply(self, image: Image) -> None:
        p = self.params
        if self.kind == "gradient":
            draw.fill_gradient(image, p[0], p[1], p[2])
        elif self.kind == "checker":
            draw.fill_checkerboard(image, int(p[0]), p[1], p[2])
        elif self.kind == "rect":
            draw.draw_rect(image, p[0], p[1], p[2], p[3], p[4], alpha=p[5])
        elif self.kind == "ellipse":
            draw.draw_ellipse(image, p[0], p[1], p[2], p[3], p[4], alpha=p[5])
        elif self.kind == "line":
            draw.draw_line(image, p[0], p[1], p[2], p[3], p[4], thickness=p[5])
        elif self.kind == "triangle":
            vertices = np.array([[p[0], p[1]], [p[2], p[3]], [p[4], p[5]]])
            draw.draw_polygon(image, vertices, p[6], alpha=p[7])
        else:
            raise ValueError(f"unknown scene op kind: {self.kind!r}")


def _random_background(rng: np.random.Generator) -> SceneOp:
    if rng.random() < 0.7:
        start, stop = sorted(rng.uniform(0.05, 0.95, size=2))
        angle = rng.uniform(0, np.pi)
        return SceneOp("gradient", (float(start), float(stop), float(angle)))
    cells = int(rng.integers(2, 7))
    low, high = sorted(rng.uniform(0.1, 0.9, size=2))
    return SceneOp("checker", (cells, float(low), float(high)))


def _random_shape(rng: np.random.Generator) -> SceneOp:
    kind = rng.choice(["rect", "ellipse", "line", "triangle"])
    value = float(rng.uniform(0.0, 1.0))
    if kind == "rect":
        y, x = rng.uniform(0.0, 0.7, size=2)
        h, w = rng.uniform(0.1, 0.45, size=2)
        return SceneOp("rect", (float(y), float(x), float(h), float(w), value, 1.0))
    if kind == "ellipse":
        cy, cx = rng.uniform(0.2, 0.8, size=2)
        ry, rx = rng.uniform(0.08, 0.3, size=2)
        return SceneOp(
            "ellipse", (float(cy), float(cx), float(ry), float(rx), value, 1.0)
        )
    if kind == "line":
        y0, x0, y1, x1 = rng.uniform(0.0, 1.0, size=4)
        thickness = float(rng.uniform(0.015, 0.05))
        return SceneOp(
            "line", (float(y0), float(x0), float(y1), float(x1), value, thickness)
        )
    pts = rng.uniform(0.1, 0.9, size=6)
    return SceneOp("triangle", tuple(float(v) for v in pts) + (value, 1.0))


@dataclass(frozen=True)
class MemeTemplate:
    """A deterministic renderable meme base image.

    Attributes
    ----------
    name:
        Stable identifier, e.g. ``"smug-frog"``.
    family:
        Family slug shared by visually related templates, e.g. ``"frog"``.
    ops:
        Scene operations applied in order onto a blank canvas.
    """

    name: str
    family: str
    ops: tuple[SceneOp, ...] = field(repr=False)

    def render(self, size: int = DEFAULT_SIZE) -> Image:
        """Render the template at ``size`` x ``size`` pixels."""
        image = blank(size)
        for op in self.ops:
            op.apply(image)
        return image


class TemplateLibrary:
    """A collection of families of :class:`MemeTemplate`.

    Parameters
    ----------
    templates:
        The templates, in creation order.

    Use :meth:`build` to synthesise a library from an RNG.
    """

    def __init__(self, templates: list[MemeTemplate]) -> None:
        self.templates = list(templates)
        self._by_name = {t.name: t for t in self.templates}
        if len(self._by_name) != len(self.templates):
            raise ValueError("duplicate template names in library")

    @classmethod
    def build(
        cls,
        rng: np.random.Generator,
        families: dict[str, int],
        *,
        shapes_per_family: int = 2,
        shapes_per_template: int = 5,
    ) -> "TemplateLibrary":
        """Create a library with the given ``{family: n_templates}`` layout.

        Each family draws a shared base scene (background + base shapes);
        each member template appends its own shapes on top, so same-family
        templates are perceptually nearer to each other than to strangers.
        """
        named = {
            family: [f"{family}-{index}" for index in range(count)]
            for family, count in families.items()
        }
        return cls.build_named(
            rng,
            named,
            shapes_per_family=shapes_per_family,
            shapes_per_template=shapes_per_template,
        )

    @classmethod
    def build_named(
        cls,
        rng: np.random.Generator,
        names_by_family: dict[str, list[str]],
        *,
        shapes_per_family: int = 2,
        shapes_per_template: int = 5,
    ) -> "TemplateLibrary":
        """Like :meth:`build` but with caller-chosen template names.

        Used to give templates the identities of catalog entries, e.g.
        ``{"frog": ["smug-frog", "pepe-the-frog"]}``.
        """
        templates: list[MemeTemplate] = []
        for family, names in names_by_family.items():
            if not names:
                raise ValueError(f"family {family!r} must have >= 1 template")
            base_ops = [_random_background(rng)]
            base_ops += [_random_shape(rng) for _ in range(shapes_per_family)]
            for name in names:
                own = [_random_shape(rng) for _ in range(shapes_per_template)]
                templates.append(
                    MemeTemplate(name=name, family=family, ops=tuple(base_ops + own))
                )
        return cls(templates)

    def __len__(self) -> int:
        return len(self.templates)

    def __iter__(self):
        return iter(self.templates)

    def __getitem__(self, name: str) -> MemeTemplate:
        return self._by_name[name]

    def families(self) -> dict[str, list[MemeTemplate]]:
        """Group templates by family, preserving order."""
        grouped: dict[str, list[MemeTemplate]] = {}
        for template in self.templates:
            grouped.setdefault(template.family, []).append(template)
        return grouped
