"""2-D Discrete Cosine Transform (type II) for perceptual hashing.

The fast path delegates to :func:`scipy.fft.dctn`; a pure-numpy matrix
implementation is kept as an executable specification and a fallback, and
the test suite asserts the two agree.
"""

from __future__ import annotations

import numpy as np
from scipy.fft import dctn

__all__ = ["dct2", "dct2_reference", "dct_matrix"]


def dct_matrix(n: int, *, ortho: bool = True) -> np.ndarray:
    """Return the ``n`` x ``n`` DCT-II transform matrix ``C``.

    ``C @ x`` computes the 1-D DCT-II of a length-``n`` signal ``x``.  With
    ``ortho=True`` the matrix is orthonormal (``C @ C.T == I``).
    """
    if n <= 0:
        raise ValueError("n must be positive")
    k = np.arange(n)[:, None]
    i = np.arange(n)[None, :]
    matrix = np.cos(np.pi * k * (2 * i + 1) / (2 * n))
    if ortho:
        matrix = matrix * np.sqrt(2.0 / n)
        matrix[0, :] *= 1.0 / np.sqrt(2.0)
    else:
        matrix *= 2.0
    return matrix


def dct2_reference(image: np.ndarray) -> np.ndarray:
    """Pure-numpy 2-D DCT-II (orthonormal), the executable specification."""
    arr = np.asarray(image, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError("dct2 expects a 2-D array")
    c_rows = dct_matrix(arr.shape[0])
    c_cols = dct_matrix(arr.shape[1])
    return c_rows @ arr @ c_cols.T


def dct2(image: np.ndarray) -> np.ndarray:
    """2-D DCT-II (orthonormal), scipy-accelerated."""
    arr = np.asarray(image, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError("dct2 expects a 2-D array")
    return dctn(arr, type=2, norm="ortho")
