"""Chunked pairwise Hamming computation and radius neighbourhoods (Step 2).

The paper performed all-pairs comparisons of millions of pHashes on a
TensorFlow multi-GPU rig.  This module provides the same contract at
laptop scale: chunked numpy broadcasting for dense matrices and
index-accelerated radius neighbourhoods (the only thing DBSCAN actually
needs) via :class:`repro.hashing.index.MultiIndexHash`.  Both paths
shard across workers when a :class:`repro.utils.parallel.ParallelConfig`
asks for it, with output identical to the serial computation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hashing.index import MultiIndexHash, mih_neighbors_shard
from repro.utils import compiled
from repro.utils.bitops import hamming_distance_matrix
from repro.utils.parallel import (
    Executor,
    ParallelConfig,
    kernel_timer,
    range_splitter,
    resolve_parallel,
    shard_bounds,
    strict_supervision,
)
from repro.utils.shm import resolve_array, shared_inputs

__all__ = [
    "PairwiseResult",
    "merge_radius_neighbors",
    "pairwise_distances",
    "patch_radius_neighbors",
    "radius_neighbors",
    "unique_hashes",
]


@dataclass(frozen=True)
class PairwiseResult:
    """A dense pairwise-distance computation result.

    Attributes
    ----------
    distances:
        ``(n, m)`` int64 Hamming distance matrix.
    n_comparisons:
        Number of *distinct* hash pairs compared: ``n * (n - 1) // 2``
        for a self-comparison (the matrix is symmetric with a zero
        diagonal, matching the paper's Table-1-style "pairs compared"
        statistic), ``n * m`` for a cross-comparison.
    """

    distances: np.ndarray
    n_comparisons: int


def pairwise_distances(
    a: np.ndarray,
    b: np.ndarray | None = None,
    *,
    chunk_size: int = 4096,
    parallel: ParallelConfig | None = None,
) -> PairwiseResult:
    """Dense all-pairs Hamming distances between hash sets ``a`` and ``b``."""
    a = np.ascontiguousarray(a, dtype=np.uint64)
    self_comparison = b is None
    b_arr = a if self_comparison else np.ascontiguousarray(b, dtype=np.uint64)
    matrix = hamming_distance_matrix(
        a, b_arr, chunk_size=chunk_size, parallel=parallel
    )
    n = int(a.size)
    n_comparisons = (
        n * (n - 1) // 2 if self_comparison else n * int(b_arr.size)
    )
    return PairwiseResult(distances=matrix, n_comparisons=n_comparisons)


def _brute_neighbors_shard(
    hashes: np.ndarray, start: int, stop: int, radius: int
) -> list[np.ndarray]:
    """Brute-force neighbour lists for the query range ``start:stop``.

    Module-level so process workers can receive pickled shards (or shm
    descriptors, which resolve to read-only views here).
    """
    hashes = resolve_array(hashes, np.uint64)
    matrix = hamming_distance_matrix(
        hashes[start:stop], hashes, parallel=ParallelConfig()
    )
    return [np.flatnonzero(row <= radius) for row in matrix]


def _merge_neighbor_lists(parts: list[list[np.ndarray]]) -> list[np.ndarray]:
    """Reassemble bisected query-range outputs: list concatenation."""
    return [row for part in parts for row in part]


def radius_neighbors(
    hashes: np.ndarray,
    radius: int,
    *,
    method: str = "auto",
    brute_force_limit: int = 2000,
    parallel: ParallelConfig | None = None,
) -> list[np.ndarray]:
    """Neighbour lists within ``radius`` for every hash (self included).

    Parameters
    ----------
    hashes:
        1-D ``uint64`` array.
    radius:
        Maximum Hamming distance (inclusive).
    method:
        ``"brute"`` computes the dense matrix; ``"mih"`` uses multi-index
        hashing; ``"auto"`` picks by collection size.
    brute_force_limit:
        ``auto`` switches to MIH above this many hashes.
    parallel:
        Optional :class:`repro.utils.parallel.ParallelConfig`.  Queries
        are sharded over contiguous ranges and reassembled in range
        order; both methods return results identical to the serial path
        for any worker count and backend.

    Returns
    -------
    list of numpy.ndarray
        ``result[i]`` holds the sorted, duplicate-free indices ``j``
        with ``hamming(hashes[i], hashes[j]) <= radius``; always
        contains ``i``.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    hashes = np.ascontiguousarray(hashes, dtype=np.uint64)
    if method not in ("auto", "brute", "mih"):
        raise ValueError(f"unknown method {method!r}")
    if method == "auto":
        method = "brute" if hashes.size <= brute_force_limit else "mih"
    if hashes.size == 0:
        return []
    parallel = resolve_parallel(parallel)
    if parallel.shards is not None:
        # Sharded placement is a data-layout directive, not a speed
        # heuristic: it overrides the method choice (the shard kernel
        # is exact MIH either way) and skips cost-model dispatch.
        # Imported lazily so the monolithic path never loads the
        # cluster package.
        from repro.index_cluster.router import sharded_radius_neighbors

        with kernel_timer(
            parallel, "radius_neighbors_sharded", int(hashes.size)
        ):
            return sharded_radius_neighbors(hashes, radius, parallel=parallel)
    kernel = compiled.kernel_variant(f"radius_neighbors_{method}")
    parallel = parallel.dispatched(kernel, int(hashes.size))
    if parallel.is_serial or hashes.size < parallel.workers * 2:
        with kernel_timer(parallel, kernel, int(hashes.size), backend="serial"):
            if method == "brute":
                matrix = hamming_distance_matrix(
                    hashes, parallel=ParallelConfig()
                )
                return [np.flatnonzero(row <= radius) for row in matrix]
            # The batched shard kernel over the full range: identical
            # output to per-query MultiIndexHash lookups, several times
            # faster (amortised byte-group gathering + candidate cache).
            return mih_neighbors_shard(hashes, 0, int(hashes.size), radius)
    shard_fn = _brute_neighbors_shard if method == "brute" else mih_neighbors_shard
    with kernel_timer(parallel, kernel, int(hashes.size)):
        # shm transport: the hash corpus is published once and every
        # shard ships a descriptor + query range instead of a pickled
        # copy of the whole array per task.
        with shared_inputs(parallel, hashes) as (hashes_src,):
            sup = Executor(parallel).supervised_starmap(
                shard_fn,
                [
                    (hashes_src, start, stop, radius)
                    for start, stop in shard_bounds(hashes.size, parallel)
                ],
                policy=strict_supervision(parallel),
                split=range_splitter(1, 2),
                merge=_merge_neighbor_lists,
            )
            return [row for shard in sup.results for row in shard]


def patch_radius_neighbors(
    prev_hashes: np.ndarray,
    prev_neighbors: list[np.ndarray],
    new_hashes: np.ndarray,
    radius: int,
) -> list[np.ndarray]:
    """Extend neighbour lists for ``concat(prev_hashes, new_hashes)``.

    Given the neighbour lists previously computed over ``prev_hashes``,
    produces the lists a cold :func:`radius_neighbors` call over the
    concatenated array would return — by indexing only the *new* hashes
    (incremental :meth:`~repro.hashing.index.MultiIndexHash.add`) and
    patching each affected old list in place of an all-pairs recompute.
    Work is O(new · lookup) instead of O(total · lookup): the delta
    path behind incremental clustering.

    Bit-identity: every new hash's row comes from the same MIH query
    the cold path runs; an old row gains exactly the new indices within
    ``radius``, appended in ascending order past ``len(prev_hashes)``,
    so rows stay sorted and duplicate-free.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    prev = np.ascontiguousarray(prev_hashes, dtype=np.uint64).reshape(-1)
    new = np.ascontiguousarray(new_hashes, dtype=np.uint64).reshape(-1)
    if len(prev_neighbors) != prev.size:
        raise ValueError(
            f"prev_neighbors has {len(prev_neighbors)} rows for "
            f"{prev.size} hashes"
        )
    n_prev = int(prev.size)
    if new.size == 0:
        return [np.asarray(row, dtype=np.int64) for row in prev_neighbors]
    index = MultiIndexHash(prev)
    index.add(new)
    additions: dict[int, list[int]] = {}
    new_rows: list[np.ndarray] = []
    for j in range(new.size):
        row = index.query_indices(int(new[j]), radius)
        new_rows.append(row)
        for i in row[row < n_prev].tolist():
            additions.setdefault(i, []).append(n_prev + j)
    patched: list[np.ndarray] = []
    for i in range(n_prev):
        row = np.asarray(prev_neighbors[i], dtype=np.int64)
        extra = additions.get(i)
        if extra:
            row = np.concatenate([row, np.asarray(extra, dtype=np.int64)])
        patched.append(row)
    return patched + new_rows


def merge_radius_neighbors(
    prev_unique: np.ndarray,
    prev_neighbors: list[np.ndarray],
    added_unique: np.ndarray,
    radius: int,
) -> tuple[np.ndarray, list[np.ndarray]]:
    """Neighbour lists over the *sorted union* of two unique hash sets.

    The clustering path works over ``np.unique`` output, where new
    hashes interleave with old ones instead of appending — so the old
    neighbour indices must be remapped through the merged order.  Both
    inputs must be strictly increasing and disjoint (``np.unique``
    output with the overlap removed).  Returns ``(combined, lists)``
    where ``combined`` equals ``np.unique(concat(prev, added))`` and
    ``lists`` is bit-identical to a cold
    ``radius_neighbors(combined, radius)``.
    """
    prev = np.ascontiguousarray(prev_unique, dtype=np.uint64).reshape(-1)
    added = np.ascontiguousarray(added_unique, dtype=np.uint64).reshape(-1)
    if prev.size > 1 and not np.all(prev[1:] > prev[:-1]):
        raise ValueError("prev_unique must be strictly increasing")
    if added.size > 1 and not np.all(added[1:] > added[:-1]):
        raise ValueError("added_unique must be strictly increasing")
    if added.size and prev.size and np.any(np.isin(added, prev)):
        raise ValueError("added_unique overlaps prev_unique")
    appended = patch_radius_neighbors(prev, prev_neighbors, added, radius)
    combined_append = np.concatenate([prev, added])
    order = np.argsort(combined_append, kind="stable").astype(np.int64)
    rank = np.empty(order.size, dtype=np.int64)
    rank[order] = np.arange(order.size, dtype=np.int64)
    combined = combined_append[order]
    merged: list[np.ndarray] = [
        np.empty(0, dtype=np.int64) for _ in range(order.size)
    ]
    for append_pos, row in enumerate(appended):
        merged[rank[append_pos]] = np.sort(rank[row])
    return combined, merged


def unique_hashes(hashes: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Deduplicate a hash array.

    Mirrors the paper's "unique pHashes" dataset statistic (Table 1):
    identical images (or byte-identical re-uploads) collapse to one hash.

    Returns
    -------
    (unique, inverse, counts):
        ``unique`` sorted unique hashes; ``inverse`` maps each input row
        to its position in ``unique``; ``counts`` is the multiplicity of
        each unique hash.  ``inverse`` is always 1-D: numpy >= 2.0
        changed ``return_inverse`` to follow the input's shape for
        multi-dimensional inputs, so both the input and the inverse are
        explicitly flattened to keep 1.26 and 2.x behaviour identical.
    """
    hashes = np.ascontiguousarray(hashes, dtype=np.uint64).reshape(-1)
    unique, inverse, counts = np.unique(
        hashes, return_inverse=True, return_counts=True
    )
    return unique, inverse.reshape(-1), counts
