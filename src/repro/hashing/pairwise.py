"""Chunked pairwise Hamming computation and radius neighbourhoods (Step 2).

The paper performed all-pairs comparisons of millions of pHashes on a
TensorFlow multi-GPU rig.  This module provides the same contract at
laptop scale: chunked numpy broadcasting for dense matrices and
index-accelerated radius neighbourhoods (the only thing DBSCAN actually
needs) via :class:`repro.hashing.index.MultiIndexHash`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hashing.index import MultiIndexHash
from repro.utils.bitops import hamming_distance_matrix

__all__ = [
    "PairwiseResult",
    "pairwise_distances",
    "radius_neighbors",
    "unique_hashes",
]


@dataclass(frozen=True)
class PairwiseResult:
    """A dense pairwise-distance computation result.

    Attributes
    ----------
    distances:
        ``(n, m)`` int64 Hamming distance matrix.
    n_comparisons:
        Number of hash pairs compared (``n * m``).
    """

    distances: np.ndarray
    n_comparisons: int


def pairwise_distances(
    a: np.ndarray,
    b: np.ndarray | None = None,
    *,
    chunk_size: int = 4096,
) -> PairwiseResult:
    """Dense all-pairs Hamming distances between hash sets ``a`` and ``b``."""
    a = np.ascontiguousarray(a, dtype=np.uint64)
    b_arr = a if b is None else np.ascontiguousarray(b, dtype=np.uint64)
    matrix = hamming_distance_matrix(a, b_arr, chunk_size=chunk_size)
    return PairwiseResult(distances=matrix, n_comparisons=int(a.size * b_arr.size))


def radius_neighbors(
    hashes: np.ndarray,
    radius: int,
    *,
    method: str = "auto",
    brute_force_limit: int = 2000,
) -> list[np.ndarray]:
    """Neighbour lists within ``radius`` for every hash (self included).

    Parameters
    ----------
    hashes:
        1-D ``uint64`` array.
    radius:
        Maximum Hamming distance (inclusive).
    method:
        ``"brute"`` computes the dense matrix; ``"mih"`` uses multi-index
        hashing; ``"auto"`` picks by collection size.
    brute_force_limit:
        ``auto`` switches to MIH above this many hashes.

    Returns
    -------
    list of numpy.ndarray
        ``result[i]`` holds the sorted indices ``j`` with
        ``hamming(hashes[i], hashes[j]) <= radius``; always contains ``i``.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    hashes = np.ascontiguousarray(hashes, dtype=np.uint64)
    if method not in ("auto", "brute", "mih"):
        raise ValueError(f"unknown method {method!r}")
    if method == "auto":
        method = "brute" if hashes.size <= brute_force_limit else "mih"
    if hashes.size == 0:
        return []
    if method == "brute":
        matrix = hamming_distance_matrix(hashes)
        return [np.flatnonzero(row <= radius) for row in matrix]
    return MultiIndexHash(hashes).radius_neighbors(radius)


def unique_hashes(hashes: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Deduplicate a hash array.

    Mirrors the paper's "unique pHashes" dataset statistic (Table 1):
    identical images (or byte-identical re-uploads) collapse to one hash.

    Returns
    -------
    (unique, inverse, counts):
        ``unique`` sorted unique hashes; ``inverse`` maps each input row to
        its position in ``unique``; ``counts`` is the multiplicity of each
        unique hash.
    """
    hashes = np.ascontiguousarray(hashes, dtype=np.uint64)
    return np.unique(hashes, return_inverse=True, return_counts=True)
