"""Chunked pairwise Hamming computation and radius neighbourhoods (Step 2).

The paper performed all-pairs comparisons of millions of pHashes on a
TensorFlow multi-GPU rig.  This module provides the same contract at
laptop scale: chunked numpy broadcasting for dense matrices and
index-accelerated radius neighbourhoods (the only thing DBSCAN actually
needs) via :class:`repro.hashing.index.MultiIndexHash`.  Both paths
shard across workers when a :class:`repro.utils.parallel.ParallelConfig`
asks for it, with output identical to the serial computation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hashing.index import MultiIndexHash, mih_neighbors_shard
from repro.utils.bitops import hamming_distance_matrix
from repro.utils.parallel import (
    Executor,
    ParallelConfig,
    range_splitter,
    resolve_parallel,
    shard_bounds,
    strict_supervision,
)

__all__ = [
    "PairwiseResult",
    "pairwise_distances",
    "radius_neighbors",
    "unique_hashes",
]


@dataclass(frozen=True)
class PairwiseResult:
    """A dense pairwise-distance computation result.

    Attributes
    ----------
    distances:
        ``(n, m)`` int64 Hamming distance matrix.
    n_comparisons:
        Number of *distinct* hash pairs compared: ``n * (n - 1) // 2``
        for a self-comparison (the matrix is symmetric with a zero
        diagonal, matching the paper's Table-1-style "pairs compared"
        statistic), ``n * m`` for a cross-comparison.
    """

    distances: np.ndarray
    n_comparisons: int


def pairwise_distances(
    a: np.ndarray,
    b: np.ndarray | None = None,
    *,
    chunk_size: int = 4096,
    parallel: ParallelConfig | None = None,
) -> PairwiseResult:
    """Dense all-pairs Hamming distances between hash sets ``a`` and ``b``."""
    a = np.ascontiguousarray(a, dtype=np.uint64)
    self_comparison = b is None
    b_arr = a if self_comparison else np.ascontiguousarray(b, dtype=np.uint64)
    matrix = hamming_distance_matrix(
        a, b_arr, chunk_size=chunk_size, parallel=parallel
    )
    n = int(a.size)
    n_comparisons = (
        n * (n - 1) // 2 if self_comparison else n * int(b_arr.size)
    )
    return PairwiseResult(distances=matrix, n_comparisons=n_comparisons)


def _brute_neighbors_shard(
    hashes: np.ndarray, start: int, stop: int, radius: int
) -> list[np.ndarray]:
    """Brute-force neighbour lists for the query range ``start:stop``.

    Module-level so process workers can receive pickled shards.
    """
    matrix = hamming_distance_matrix(
        hashes[start:stop], hashes, parallel=ParallelConfig()
    )
    return [np.flatnonzero(row <= radius) for row in matrix]


def _merge_neighbor_lists(parts: list[list[np.ndarray]]) -> list[np.ndarray]:
    """Reassemble bisected query-range outputs: list concatenation."""
    return [row for part in parts for row in part]


def radius_neighbors(
    hashes: np.ndarray,
    radius: int,
    *,
    method: str = "auto",
    brute_force_limit: int = 2000,
    parallel: ParallelConfig | None = None,
) -> list[np.ndarray]:
    """Neighbour lists within ``radius`` for every hash (self included).

    Parameters
    ----------
    hashes:
        1-D ``uint64`` array.
    radius:
        Maximum Hamming distance (inclusive).
    method:
        ``"brute"`` computes the dense matrix; ``"mih"`` uses multi-index
        hashing; ``"auto"`` picks by collection size.
    brute_force_limit:
        ``auto`` switches to MIH above this many hashes.
    parallel:
        Optional :class:`repro.utils.parallel.ParallelConfig`.  Queries
        are sharded over contiguous ranges and reassembled in range
        order; both methods return results identical to the serial path
        for any worker count and backend.

    Returns
    -------
    list of numpy.ndarray
        ``result[i]`` holds the sorted, duplicate-free indices ``j``
        with ``hamming(hashes[i], hashes[j]) <= radius``; always
        contains ``i``.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    hashes = np.ascontiguousarray(hashes, dtype=np.uint64)
    if method not in ("auto", "brute", "mih"):
        raise ValueError(f"unknown method {method!r}")
    if method == "auto":
        method = "brute" if hashes.size <= brute_force_limit else "mih"
    if hashes.size == 0:
        return []
    parallel = resolve_parallel(parallel)
    if parallel.is_serial or hashes.size < parallel.workers * 2:
        if method == "brute":
            matrix = hamming_distance_matrix(hashes, parallel=ParallelConfig())
            return [np.flatnonzero(row <= radius) for row in matrix]
        return MultiIndexHash(hashes).radius_neighbors(radius)
    shard_fn = _brute_neighbors_shard if method == "brute" else mih_neighbors_shard
    sup = Executor(parallel).supervised_starmap(
        shard_fn,
        [
            (hashes, start, stop, radius)
            for start, stop in shard_bounds(hashes.size, parallel)
        ],
        policy=strict_supervision(parallel),
        split=range_splitter(1, 2),
        merge=_merge_neighbor_lists,
    )
    return [row for shard in sup.results for row in shard]


def unique_hashes(hashes: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Deduplicate a hash array.

    Mirrors the paper's "unique pHashes" dataset statistic (Table 1):
    identical images (or byte-identical re-uploads) collapse to one hash.

    Returns
    -------
    (unique, inverse, counts):
        ``unique`` sorted unique hashes; ``inverse`` maps each input row
        to its position in ``unique``; ``counts`` is the multiplicity of
        each unique hash.  ``inverse`` is always 1-D: numpy >= 2.0
        changed ``return_inverse`` to follow the input's shape for
        multi-dimensional inputs, so both the input and the inverse are
        explicitly flattened to keep 1.26 and 2.x behaviour identical.
    """
    hashes = np.ascontiguousarray(hashes, dtype=np.uint64).reshape(-1)
    unique, inverse, counts = np.unique(
        hashes, return_inverse=True, return_counts=True
    )
    return unique, inverse.reshape(-1), counts
