"""The 64-bit DCT perceptual hash (pHash) — the paper's Step 1.

Algorithm (compatible with the ``imagehash`` library the paper used):

1. convert to grayscale and resize to ``hash_size * highfreq_factor``
   (default 32 x 32),
2. take the 2-D DCT-II,
3. keep the top-left ``hash_size`` x ``hash_size`` low-frequency block,
4. threshold each coefficient against the median of the block (the DC term
   is excluded from the median so it cannot dominate), producing 64 bits,
5. pack the bits row-major into one ``uint64``.

Visually similar images differ in few bits; the paper treats Hamming
distance <= 8 as "same meme variant".
"""

from __future__ import annotations

import numpy as np

from repro.hashing.dct import dct2
from repro.images.raster import resize, to_grayscale_array
from repro.utils.bitops import pack_bits

__all__ = ["PHASH_BITS", "phash", "phash_batch", "phash_to_hex", "phash_bits"]

PHASH_BITS = 64
_HASH_SIZE = 8
_HIGHFREQ_FACTOR = 4


def phash_bits(image: np.ndarray, *, hash_size: int = _HASH_SIZE) -> np.ndarray:
    """Return the raw bit array (``hash_size**2`` 0/1 values, row-major)."""
    if hash_size < 2:
        raise ValueError("hash_size must be >= 2")
    gray = to_grayscale_array(image)
    side = hash_size * _HIGHFREQ_FACTOR
    small = resize(gray, side, side)
    coefficients = dct2(small)[:hash_size, :hash_size]
    flat = coefficients.ravel()
    median = np.median(flat[1:])  # exclude the DC coefficient
    return (flat > median).astype(np.uint8)


def phash(image: np.ndarray) -> np.uint64:
    """Compute the 64-bit pHash of an image.

    >>> from repro.images import blank
    >>> phash_to_hex(phash(blank(64, fill=0.5)))  # constant: only the DC bit
    '8000000000000000'
    """
    return pack_bits(phash_bits(image))


def phash_batch(
    images: list[np.ndarray] | tuple[np.ndarray, ...],
    *,
    cache=None,
) -> np.ndarray:
    """pHash a sequence of images into a ``uint64`` array.

    With a :class:`repro.core.cache.ContentCache`, each raster is keyed
    by its content (dtype + shape + bytes) and only never-seen images
    are hashed — a batch extended by N new images re-hashes exactly
    those N.  The output is identical with or without the cache (a
    DCT + threshold is deterministic; the cache stores its result).
    """
    if cache is None:
        return np.array([phash(image) for image in images], dtype=np.uint64)
    out = np.empty(len(images), dtype=np.uint64)
    for position, image in enumerate(images):
        key = cache.key("phash", np.asarray(image))
        hit, value = cache.get(key)
        if not hit:
            value = int(phash(image))
            cache.put(key, value)
        out[position] = value
    return out


def phash_to_hex(value: np.uint64 | int) -> str:
    """Format a pHash in the 16-hex-digit form the paper prints.

    >>> phash_to_hex(0x55352B0B8D8B5B53)
    '55352b0b8d8b5b53'
    """
    return format(int(value), "016x")
