"""Perceptual hashing and Hamming-space search.

Implements the paper's Step 1 (pHash extraction) and Step 2 (pairwise
Hamming distance) from scratch:

* :mod:`repro.hashing.dct` — 2-D DCT-II (scipy-backed with a pure-numpy
  reference implementation).
* :mod:`repro.hashing.phash` — the 64-bit DCT perceptual hash, algorithm-
  compatible with the ``imagehash`` library the paper used.
* :mod:`repro.hashing.pairwise` — chunked all-pairs distances and radius
  neighbourhoods (the laptop-scale replacement for the paper's TensorFlow
  multi-GPU engine).
* :mod:`repro.hashing.index` — BK-tree and multi-index hashing for fast
  radius search, used by clustering and association at scale.
"""

from repro.hashing.alternatives import HASHERS, ahash, dhash, whash
from repro.hashing.dct import dct2, dct2_reference
from repro.hashing.index import BKTree, MultiIndexHash
from repro.hashing.pairwise import (
    PairwiseResult,
    pairwise_distances,
    radius_neighbors,
    unique_hashes,
)
from repro.hashing.phash import PHASH_BITS, phash, phash_batch, phash_to_hex

__all__ = [
    "dct2",
    "ahash",
    "dhash",
    "whash",
    "HASHERS",
    "dct2_reference",
    "phash",
    "phash_batch",
    "phash_to_hex",
    "PHASH_BITS",
    "pairwise_distances",
    "radius_neighbors",
    "unique_hashes",
    "PairwiseResult",
    "BKTree",
    "MultiIndexHash",
]
