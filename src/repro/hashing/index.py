"""Hamming-space indexes: BK-tree and multi-index hashing (MIH).

The paper ran all-pairs comparisons on GPUs; at laptop scale the same
radius queries ("all hashes within Hamming distance r of q") are served by
sub-linear indexes:

* :class:`BKTree` — a metric tree over the Hamming metric.  Simple,
  exact, good for medium collections and as a cross-check.
* :class:`MultiIndexHash` — Norouzi et al.'s multi-index hashing.  The
  64-bit code is split into ``m`` disjoint chunks; by pigeonhole, any code
  within distance ``r`` of the query agrees with it within
  ``floor(r / m)`` on at least one chunk, so candidates are found by
  enumerating near-exact matches per chunk and verified exactly.  For the
  paper's r <= 10 with m=8 byte-chunks this means probing only the 9
  byte values at distance <= 1 per chunk.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.utils import compiled
from repro.utils.bitops import hamming_distance, hamming_to_many, popcount
from repro.utils.shm import resolve_array

__all__ = ["BKTree", "MultiIndexHash", "mih_neighbors_shard"]


class _BKNode:
    __slots__ = ("value", "items", "children")

    def __init__(self, value: int, item: int) -> None:
        self.value = value
        self.items = [item]
        self.children: dict[int, _BKNode] = {}


class BKTree:
    """Exact radius search over 64-bit hashes via a Burkhard–Keller tree.

    Items are integer payloads (typically indices into an external array);
    duplicate hash values accumulate on a single node.

    Both :meth:`add` and :meth:`query` are iterative (a descent loop and
    an explicit stack respectively), never recursive: a degenerate
    insertion order that chains nodes — every new value at the same
    distance from the current node — builds a tree as deep as the
    collection, and a recursive walk would hit Python's recursion limit
    there (pinned by a 5000-deep adversarial chain in the tests).
    """

    def __init__(self, hashes: Iterable[int] | None = None) -> None:
        self._root: _BKNode | None = None
        self._size = 0
        if hashes is not None:
            for i, value in enumerate(hashes):
                self.add(int(value), i)

    def __len__(self) -> int:
        return self._size

    def add(self, value: int, item: int) -> None:
        """Insert hash ``value`` carrying payload ``item``."""
        self._size += 1
        if self._root is None:
            self._root = _BKNode(value, item)
            return
        node = self._root
        while True:
            distance = hamming_distance(value, node.value)
            if distance == 0:
                node.items.append(item)
                return
            child = node.children.get(distance)
            if child is None:
                node.children[distance] = _BKNode(value, item)
                return
            node = child

    def query(self, value: int, radius: int) -> list[tuple[int, int]]:
        """Return ``(item, distance)`` pairs within ``radius`` of ``value``."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        results: list[tuple[int, int]] = []
        if self._root is None:
            return results
        stack = [self._root]
        while stack:
            node = stack.pop()
            distance = hamming_distance(value, node.value)
            if distance <= radius:
                results.extend((item, distance) for item in node.items)
            lo, hi = distance - radius, distance + radius
            for child_distance, child in node.children.items():
                if lo <= child_distance <= hi:
                    stack.append(child)
        return results


def _bytes_within(value: int, max_distance: int) -> list[int]:
    """All byte values within Hamming distance ``max_distance`` of ``value``."""
    out = {value}
    frontier = {value}
    for _ in range(max_distance):
        nxt = set()
        for v in frontier:
            for bit in range(8):
                nxt.add(v ^ (1 << bit))
        frontier = nxt - out
        out |= nxt
    return sorted(out)


class MultiIndexHash:
    """Multi-index hashing over 64-bit codes with 8-bit chunks.

    Parameters
    ----------
    hashes:
        1-D ``uint64`` array; payloads are positions in this array.
    """

    N_CHUNKS = 8

    def __init__(self, hashes: np.ndarray) -> None:
        self.hashes = np.ascontiguousarray(hashes, dtype=np.uint64).reshape(-1)
        # chunk_values[c][i] = byte c of hash i (little-endian byte order;
        # the order is irrelevant as long as it is consistent).
        self._chunk_values = self.hashes.view(np.uint8).reshape(-1, self.N_CHUNKS)
        # Buckets are built with one stable argsort per chunk instead of
        # an n*8 Python loop; within a byte value the stable sort keeps
        # indices ascending, identical to the incremental appends in add().
        self._buckets: list[dict[int, list[int]]] = []
        for c in range(self.N_CHUNKS):
            bucket: dict[int, list[int]] = {}
            if self.hashes.size:
                values = self._chunk_values[:, c]
                order = np.argsort(values, kind="stable").astype(np.int64)
                sorted_values = values[order]
                boundaries = np.flatnonzero(np.diff(sorted_values)) + 1
                starts = np.concatenate(([0], boundaries))
                stops = np.concatenate((boundaries, [sorted_values.size]))
                for start, stop in zip(starts, stops):
                    bucket[int(sorted_values[start])] = order[start:stop].tolist()
            self._buckets.append(bucket)

    def __len__(self) -> int:
        return int(self.hashes.size)

    def add(self, new_hashes: np.ndarray) -> None:
        """Incrementally index more hashes (positions continue the array).

        Appending then querying is identical to rebuilding the index
        over the concatenated array — this is what lets a run with N
        new images extend yesterday's neighbourhoods instead of
        re-indexing the whole collection.
        """
        new = np.ascontiguousarray(new_hashes, dtype=np.uint64).reshape(-1)
        if new.size == 0:
            return
        offset = int(self.hashes.size)
        self.hashes = np.concatenate([self.hashes, new])
        self._chunk_values = self.hashes.view(np.uint8).reshape(-1, self.N_CHUNKS)
        new_chunks = new.view(np.uint8).reshape(-1, self.N_CHUNKS)
        for i in range(new.size):
            for c in range(self.N_CHUNKS):
                key = int(new_chunks[i, c])
                self._buckets[c].setdefault(key, []).append(offset + i)

    def query(self, value: int, radius: int) -> list[tuple[int, int]]:
        """Return ``(index, distance)`` pairs within ``radius`` of ``value``.

        Exact: candidates from the chunk probes are verified with a full
        Hamming computation.
        """
        if radius < 0:
            raise ValueError("radius must be non-negative")
        if self.hashes.size == 0:
            return []
        per_chunk = radius // self.N_CHUNKS
        query_bytes = np.frombuffer(
            np.uint64(value).tobytes(), dtype=np.uint8
        )
        candidates: set[int] = set()
        for c in range(self.N_CHUNKS):
            bucket = self._buckets[c]
            for probe in _bytes_within(int(query_bytes[c]), per_chunk):
                hits = bucket.get(probe)
                if hits:
                    candidates.update(hits)
        if not candidates:
            return []
        idx = np.fromiter(candidates, dtype=np.int64)
        distances = hamming_to_many(np.uint64(value), self.hashes[idx])
        keep = distances <= radius
        return list(zip(idx[keep].tolist(), distances[keep].tolist()))

    def query_indices(self, value: int, radius: int) -> np.ndarray:
        """Like :meth:`query` but returns a sorted, duplicate-free index array.

        The candidate probes emit indices in arbitrary set order;
        ``np.unique`` pins the documented contract (sorted ascending, no
        duplicates) so downstream consumers — DBSCAN's breadth-first
        expansion in particular — see a canonical neighbour order.
        """
        pairs = self.query(value, radius)
        if not pairs:
            return np.empty(0, dtype=np.int64)
        return np.unique(
            np.fromiter((i for i, _ in pairs), dtype=np.int64, count=len(pairs))
        )

    def radius_neighbors(self, radius: int) -> list[np.ndarray]:
        """Neighbour lists (sorted, self included) for every indexed hash."""
        return [
            self.query_indices(int(self.hashes[i]), radius)
            for i in range(self.hashes.size)
        ]


def mih_neighbors_shard(
    hashes: np.ndarray, start: int, stop: int, radius: int
) -> list[np.ndarray]:
    """Self-join MIH neighbour lists for the query range ``start:stop``.

    The shard kernel behind the parallel ``radius_neighbors`` path:
    module-level (process workers receive either the pickled ``uint64``
    shard array or a zero-copy
    :class:`repro.utils.shm.ShmArrayRef` descriptor under the shm
    transport), and output-identical to calling
    ``MultiIndexHash(hashes).query_indices(...)`` per query — sorted,
    duplicate-free, self included.

    Unlike the per-query path it amortises bucket gathering: per-chunk
    byte groups are materialised once with a vectorised argsort instead
    of Python dict buckets, the candidate array for a (chunk, byte
    value) pair is cached across queries (cluster members share chunk
    bytes), and verification runs popcount over the concatenated
    candidates before deduplicating only the survivors.  When the
    compiled tier is active (``REPRO_COMPILED``) the whole query loop
    runs natively with bit-identical output.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    hashes = resolve_array(hashes, np.uint64)
    n_chunks = MultiIndexHash.N_CHUNKS
    fast = compiled.mih_query_batch(
        hashes,
        int(start),
        int(stop),
        radius,
        [_bytes_within(value, radius // n_chunks) for value in range(256)],
    )
    if fast is not None:
        return fast
    per_chunk = radius // n_chunks
    chunk_values = hashes.view(np.uint8).reshape(-1, n_chunks)
    all_bytes = np.arange(256)
    groups: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    for c in range(n_chunks):
        order = np.argsort(chunk_values[:, c], kind="stable").astype(np.int64)
        sorted_bytes = chunk_values[order, c]
        left = np.searchsorted(sorted_bytes, all_bytes, side="left")
        right = np.searchsorted(sorted_bytes, all_bytes, side="right")
        groups.append((order, left, right))
    balls = [_bytes_within(value, per_chunk) for value in range(256)]
    cache: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}
    out: list[np.ndarray] = []
    for i in range(start, stop):
        index_parts: list[np.ndarray] = []
        value_parts: list[np.ndarray] = []
        for c in range(n_chunks):
            key = (c, int(chunk_values[i, c]))
            entry = cache.get(key)
            if entry is None:
                order, left, right = groups[c]
                candidate = np.concatenate(
                    [order[left[probe] : right[probe]] for probe in balls[key[1]]]
                )
                entry = (candidate, hashes[candidate])
                cache[key] = entry
            index_parts.append(entry[0])
            value_parts.append(entry[1])
        candidates = np.concatenate(index_parts)
        distances = popcount(np.concatenate(value_parts) ^ hashes[i])
        out.append(np.unique(candidates[distances <= radius]))
    return out
