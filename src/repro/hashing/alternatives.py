"""Alternative perceptual hashes: aHash, dHash, and wHash.

The paper standardises on the DCT pHash.  Three classics are implemented
for comparison (``bench_ablation_hash`` measures why pHash wins for meme
tracking):

* **aHash** (average hash): downscale to 8x8, threshold each pixel
  against the mean.  Fast, but brittle under brightness/contrast edits —
  exactly the transforms meme variants apply.
* **dHash** (difference hash): downscale to 9x8, compare each pixel to
  its right neighbour.  Robust to global brightness, sensitive to
  texture noise.
* **wHash** (wavelet hash): a 3-level 2-D Haar DWT (implemented from
  scratch — no pywt offline) of a 64x64 grayscale; the 8x8 low-frequency
  approximation band is median-thresholded.  Conceptually the wavelet
  sibling of pHash's DCT.

All four produce 64-bit codes, so the whole pipeline (pairwise engine,
DBSCAN, annotation) runs unchanged on any of them.
"""

from __future__ import annotations

import numpy as np

from repro.images.raster import resize, to_grayscale_array
from repro.utils.bitops import pack_bits

__all__ = ["ahash", "dhash", "whash", "haar_dwt2", "HASHERS"]


def ahash(image: np.ndarray) -> np.uint64:
    """Average hash: 8x8 mean-threshold bits, row-major MSB-first."""
    gray = to_grayscale_array(image)
    small = resize(gray, 8, 8).astype(np.float64)
    bits = (small > small.mean()).astype(np.uint8).ravel()
    return pack_bits(bits)


def dhash(image: np.ndarray) -> np.uint64:
    """Difference hash: 8 rows of 8 left<right comparisons on a 9x8 grid."""
    gray = to_grayscale_array(image)
    small = resize(gray, 8, 9).astype(np.float64)  # 8 rows, 9 columns
    bits = (small[:, 1:] > small[:, :-1]).astype(np.uint8).ravel()
    return pack_bits(bits)


def haar_dwt2(image: np.ndarray, levels: int = 1) -> np.ndarray:
    """Multi-level 2-D Haar discrete wavelet transform (approximation band).

    Each level averages 2x2 blocks (the LL band) after the standard Haar
    filter pair; only the approximation band is returned because that is
    all the hash consumes.  Input sides must be divisible by ``2**levels``.
    """
    arr = np.asarray(image, dtype=np.float64)
    if arr.ndim != 2:
        raise ValueError("haar_dwt2 expects a 2-D array")
    if levels < 1:
        raise ValueError("levels must be >= 1")
    factor = 2**levels
    if arr.shape[0] % factor or arr.shape[1] % factor:
        raise ValueError(
            f"image sides must be divisible by 2**levels = {factor}"
        )
    out = arr
    for _ in range(levels):
        # Rows: (a + b) / sqrt(2); columns likewise -> LL band.
        rows = (out[:, 0::2] + out[:, 1::2]) / np.sqrt(2.0)
        out = (rows[0::2, :] + rows[1::2, :]) / np.sqrt(2.0)
    return out


def whash(image: np.ndarray) -> np.uint64:
    """Wavelet hash: Haar LL band at 8x8, median-thresholded."""
    gray = to_grayscale_array(image)
    small = resize(gray, 64, 64).astype(np.float64)
    band = haar_dwt2(small, levels=3)  # 64 -> 8
    bits = (band > np.median(band)).astype(np.uint8).ravel()
    return pack_bits(bits)


def _phash(image: np.ndarray) -> np.uint64:
    from repro.hashing.phash import phash

    return phash(image)


# Registry used by the ablation bench and by callers that want to swap
# the pipeline's hash function.
HASHERS = {
    "phash": _phash,
    "ahash": ahash,
    "dhash": dhash,
    "whash": whash,
}
