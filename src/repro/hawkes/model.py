"""The multivariate Hawkes model and event sequences.

Conventions: ``K`` processes (communities); ``background`` is the vector
of immigrant rates; ``weights[i, j]`` is the expected number of events
directly caused on process ``j`` by one event on process ``i``; the
kernel distributes those offspring over time.  Time is measured in days.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hawkes.kernels import ExponentialKernel

__all__ = ["EventSequence", "HawkesModel"]


@dataclass(frozen=True)
class EventSequence:
    """A realisation: sorted event times with their process indices.

    Attributes
    ----------
    times:
        Float64 timestamps, non-decreasing.
    processes:
        Int64 process index per event, aligned with ``times``.
    horizon:
        Observation window length ``T`` (events live in ``[0, T]``).
    """

    times: np.ndarray
    processes: np.ndarray
    horizon: float

    def __post_init__(self) -> None:
        times = np.ascontiguousarray(self.times, dtype=np.float64)
        processes = np.ascontiguousarray(self.processes, dtype=np.int64)
        if times.shape != processes.shape or times.ndim != 1:
            raise ValueError("times and processes must be aligned 1-D arrays")
        if times.size and np.any(np.diff(times) < 0):
            raise ValueError("times must be sorted non-decreasing")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if times.size and (times[0] < 0 or times[-1] > self.horizon):
            raise ValueError("event times must lie within [0, horizon]")
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "processes", processes)

    def __len__(self) -> int:
        return int(self.times.size)

    def counts(self, n_processes: int) -> np.ndarray:
        """Events per process."""
        return np.bincount(self.processes, minlength=n_processes).astype(np.int64)

    @classmethod
    def from_unsorted(
        cls, times: np.ndarray, processes: np.ndarray, horizon: float
    ) -> "EventSequence":
        """Build a sequence from unsorted event data."""
        times = np.asarray(times, dtype=np.float64)
        processes = np.asarray(processes, dtype=np.int64)
        order = np.argsort(times, kind="stable")
        return cls(times=times[order], processes=processes[order], horizon=horizon)


@dataclass(frozen=True)
class HawkesModel:
    """A multivariate Hawkes process with a shared excitation kernel."""

    background: np.ndarray
    weights: np.ndarray
    kernel: ExponentialKernel = field(default_factory=ExponentialKernel)

    def __post_init__(self) -> None:
        background = np.ascontiguousarray(self.background, dtype=np.float64)
        weights = np.ascontiguousarray(self.weights, dtype=np.float64)
        if background.ndim != 1:
            raise ValueError("background must be a vector")
        k = background.size
        if weights.shape != (k, k):
            raise ValueError(f"weights must be ({k}, {k}), got {weights.shape}")
        if np.any(background < 0) or np.any(weights < 0):
            raise ValueError("rates and weights must be non-negative")
        object.__setattr__(self, "background", background)
        object.__setattr__(self, "weights", weights)

    @property
    def n_processes(self) -> int:
        return int(self.background.size)

    def spectral_radius(self) -> float:
        """Largest |eigenvalue| of the branching matrix.

        The process is stationary (sub-critical) iff this is < 1; the
        simulator refuses super-critical models.
        """
        return float(np.max(np.abs(np.linalg.eigvals(self.weights))))

    def intensity(self, sequence: EventSequence, t: float) -> np.ndarray:
        """Conditional intensity vector at time ``t`` given past events."""
        past = sequence.times < t
        contributions = np.zeros(self.n_processes)
        if np.any(past):
            dts = t - sequence.times[past]
            density = np.asarray(self.kernel.density(dts))
            sources = sequence.processes[past]
            # lambda_j(t) = mu_j + sum_n W[k_n, j] * phi(t - t_n)
            for j in range(self.n_processes):
                contributions[j] = np.sum(self.weights[sources, j] * density)
        return self.background + contributions

    def log_likelihood(self, sequence: EventSequence) -> float:
        """Exact log-likelihood of ``sequence`` under this model."""
        times = sequence.times
        processes = sequence.processes
        horizon = sequence.horizon
        n = len(sequence)
        log_term = 0.0
        if n and not isinstance(self.kernel, ExponentialKernel):
            # Generic kernels: direct O(n^2) evaluation of the log term.
            lambdas = np.empty(n)
            for event in range(n):
                earlier = times < times[event]
                lam = self.background[processes[event]]
                if np.any(earlier):
                    phi = np.asarray(
                        self.kernel.density(times[event] - times[earlier])
                    )
                    lam += float(
                        (
                            self.weights[processes[earlier], processes[event]]
                            * phi
                        ).sum()
                    )
                lambdas[event] = lam
            log_term = float(np.log(np.clip(lambdas, 1e-300, None)).sum())
        elif n:
            # Exponential-kernel recursion: the excitation vector decays
            # multiplicatively between events, giving O(n * K) evaluation.
            beta = self.kernel.beta
            excitation = np.zeros(self.n_processes)
            pending = np.zeros(self.n_processes)  # same-timestamp events
            lambdas = np.empty(n)
            previous_time = 0.0
            for event in range(n):
                dt = times[event] - previous_time
                if dt > 0:
                    excitation = (excitation + pending) * np.exp(-beta * dt)
                    pending = np.zeros(self.n_processes)
                lambdas[event] = (
                    self.background[processes[event]] + excitation[processes[event]]
                )
                pending = pending + self.weights[processes[event]] * beta
                previous_time = times[event]
            log_term = float(np.log(np.clip(lambdas, 1e-300, None)).sum())
        compensator = float(self.background.sum() * horizon)
        if n:
            remaining = np.asarray(self.kernel.integral(horizon - times))
            compensator += float(
                (self.weights[processes].sum(axis=1) * remaining).sum()
            )
        return log_term - compensator
