"""Multivariate Hawkes processes for influence estimation (paper Section 5).

The paper models the five communities (/pol/, Twitter, Reddit, The_Donald,
Gab) as a multivariate Hawkes process per meme cluster, fits it with the
Linderman & Adams Gibbs sampler, and introduces a *root-cause attribution*
that propagates an event's cause probabilities through the branching
structure back to the community that originated the cascade.

This package implements the full stack from scratch:

* :mod:`repro.hawkes.kernels` — excitation kernels (exponential).
* :mod:`repro.hawkes.model` — the model, intensities, log-likelihood.
* :mod:`repro.hawkes.simulate` — exact branching simulation (with ground-
  truth parents) and Ogata thinning as a cross-check.
* :mod:`repro.hawkes.fit` — MAP-EM over the latent branching structure
  (the deterministic counterpart of the paper's Gibbs sampler: both
  operate on the same parent-attribution augmentation).
* :mod:`repro.hawkes.attribution` — the paper's improved root-cause
  influence estimator.
"""

from repro.hawkes.attribution import (
    InfluenceMatrices,
    attribute_root_causes,
    influence_from_sequences,
)
from repro.hawkes.fit import FitConfig, FitResult, fit_hawkes_em
from repro.hawkes.gibbs import GibbsResult, gibbs_sample_hawkes
from repro.hawkes.kernels import ExponentialKernel
from repro.hawkes.model import EventSequence, HawkesModel
from repro.hawkes.simulate import SimulationResult, simulate_branching, simulate_thinning

__all__ = [
    "ExponentialKernel",
    "HawkesModel",
    "EventSequence",
    "SimulationResult",
    "simulate_branching",
    "simulate_thinning",
    "FitConfig",
    "FitResult",
    "fit_hawkes_em",
    "GibbsResult",
    "gibbs_sample_hawkes",
    "attribute_root_causes",
    "influence_from_sequences",
    "InfluenceMatrices",
]
