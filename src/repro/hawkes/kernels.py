"""Excitation kernels for Hawkes processes.

A kernel is a probability density over positive delays; an event on
process ``i`` raises the intensity of process ``j`` by
``W[i, j] * kernel.density(dt)``, so ``W[i, j]`` is the expected number of
direct offspring (the paper's "weight from community to community").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ExponentialKernel", "PowerLawKernel"]


@dataclass(frozen=True)
class ExponentialKernel:
    """Exponential decay kernel ``beta * exp(-beta * dt)``.

    Parameters
    ----------
    beta:
        Decay rate; ``1 / beta`` is the mean reaction delay, in the same
        time unit as event timestamps (days throughout this repo).
    """

    beta: float = 1.0

    def __post_init__(self) -> None:
        if self.beta <= 0:
            raise ValueError("beta must be positive")

    def density(self, dt: np.ndarray | float) -> np.ndarray | float:
        """Density at delay ``dt`` (0 for negative delays)."""
        dt = np.asarray(dt, dtype=np.float64)
        out = np.where(dt >= 0, self.beta * np.exp(-self.beta * dt), 0.0)
        return float(out) if out.ndim == 0 else out

    def integral(self, dt: np.ndarray | float) -> np.ndarray | float:
        """CDF at ``dt``: mass of the kernel within ``[0, dt]``."""
        dt = np.asarray(dt, dtype=np.float64)
        out = np.where(dt >= 0, 1.0 - np.exp(-self.beta * dt), 0.0)
        return float(out) if out.ndim == 0 else out

    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Draw delay(s) from the kernel."""
        return rng.exponential(1.0 / self.beta, size=size)

    def support_window(self, mass: float = 0.999) -> float:
        """Delay beyond which less than ``1 - mass`` of the kernel remains.

        Used to truncate pairwise computations in the EM fit.
        """
        if not 0 < mass < 1:
            raise ValueError("mass must be in (0, 1)")
        return float(-np.log(1.0 - mass) / self.beta)


@dataclass(frozen=True)
class PowerLawKernel:
    """Heavy-tailed (Pareto-type) kernel, as used in aftershock models.

    ``density(dt) = alpha * c^alpha / (dt + c)^(alpha + 1)`` — a proper
    density over positive delays for ``alpha > 0``.  Empirical resharing
    delays on social platforms are often heavier-tailed than exponential;
    this kernel lets both simulation and fitting explore that regime
    (the likelihood falls back to the generic O(n^2) path since the
    exponential recursion does not apply).

    Parameters
    ----------
    alpha:
        Tail exponent; smaller is heavier-tailed.
    c:
        Delay scale (the "knee"), in days.
    """

    alpha: float = 1.5
    c: float = 0.5

    def __post_init__(self) -> None:
        if self.alpha <= 0 or self.c <= 0:
            raise ValueError("alpha and c must be positive")

    def density(self, dt: np.ndarray | float) -> np.ndarray | float:
        dt = np.asarray(dt, dtype=np.float64)
        safe = np.maximum(dt, 0.0)  # avoid (dt + c) <= 0 for negative dt
        out = np.where(
            dt >= 0,
            self.alpha * self.c**self.alpha / (safe + self.c) ** (self.alpha + 1),
            0.0,
        )
        return float(out) if out.ndim == 0 else out

    def integral(self, dt: np.ndarray | float) -> np.ndarray | float:
        dt = np.asarray(dt, dtype=np.float64)
        safe = np.maximum(dt, 0.0)
        out = np.where(dt >= 0, 1.0 - (self.c / (safe + self.c)) ** self.alpha, 0.0)
        return float(out) if out.ndim == 0 else out

    def sample(self, rng: np.random.Generator, size: int | None = None):
        """Inverse-CDF sampling: ``dt = c * (U^{-1/alpha} - 1)``."""
        u = rng.random(size)
        return self.c * (u ** (-1.0 / self.alpha) - 1.0)

    def support_window(self, mass: float = 0.999) -> float:
        if not 0 < mass < 1:
            raise ValueError("mass must be in (0, 1)")
        return float(self.c * ((1.0 - mass) ** (-1.0 / self.alpha) - 1.0))
