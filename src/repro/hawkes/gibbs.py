"""Gibbs sampling for Hawkes models — the paper's actual inference method.

Section 5.2: "We fit Hawkes models using Gibbs sampling as described in
[Linderman & Adams 2015]".  That sampler augments the model with each
event's latent parent and alternates:

1. **Parent step** — sample every event's parent from its conditional
   (background vs each sufficiently recent earlier event), given rates.
2. **Rate step** — with parents fixed, the Gamma priors are conjugate:
   background rates draw from ``Gamma(a + n_background_k, b + T)`` and
   weights from ``Gamma(a + n_edges_ij, b + exposure_i)``.

The posterior mean over samples estimates the same quantities the EM
(:mod:`repro.hawkes.fit`) computes deterministically; the test suite
checks the two agree.  Root-cause attribution follows directly from the
sampled parent chains: each sample yields *hard* root assignments, and
averaging over samples gives the per-event root distribution of
:func:`repro.hawkes.attribution.attribute_root_causes`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hawkes.fit import FitConfig
from repro.hawkes.kernels import ExponentialKernel
from repro.hawkes.model import EventSequence, HawkesModel

__all__ = ["GibbsResult", "gibbs_sample_hawkes"]


@dataclass(frozen=True)
class GibbsResult:
    """Posterior summaries from the Gibbs run.

    Attributes
    ----------
    posterior_mean:
        Model with posterior-mean background rates and weights.
    background_samples, weight_samples:
        Kept samples, shape ``(n_samples, K)`` / ``(n_samples, K, K)``.
    root_distribution:
        Per event, the fraction of kept samples in which its cascade's
        root lay on each community — the sampling analogue of
        :func:`repro.hawkes.attribution.attribute_root_causes`.
    """

    posterior_mean: HawkesModel
    background_samples: np.ndarray
    weight_samples: np.ndarray
    root_distribution: np.ndarray


def _sample_parents(
    model: HawkesModel,
    sequence: EventSequence,
    rng: np.random.Generator,
    window: float,
) -> np.ndarray:
    """Draw one parent assignment per event (-1 = background)."""
    times = sequence.times
    processes = sequence.processes
    n = len(sequence)
    parents = np.full(n, -1, dtype=np.int64)
    start = 0
    for event in range(n):
        t = times[event]
        while times[start] < t - window:
            start += 1
        candidates = np.arange(start, event)
        if candidates.size:
            dts = t - times[candidates]
            keep = dts > 0
            candidates = candidates[keep]
        if candidates.size == 0:
            continue
        dts = t - times[candidates]
        rates = model.weights[
            processes[candidates], processes[event]
        ] * np.asarray(model.kernel.density(dts))
        mu = model.background[processes[event]]
        total = mu + rates.sum()
        if total <= 0:
            continue
        u = rng.uniform(0.0, total)
        if u < mu:
            continue  # background
        cumulative = mu + np.cumsum(rates)
        parents[event] = candidates[int(np.searchsorted(cumulative, u))]
    return parents


def _roots_from_parents(parents: np.ndarray, processes: np.ndarray) -> np.ndarray:
    """Root community per event under one hard parent assignment."""
    n = parents.size
    roots = np.empty(n, dtype=np.int64)
    for event in range(n):
        parent = parents[event]
        roots[event] = processes[event] if parent == -1 else roots[parent]
    return roots


def gibbs_sample_hawkes(
    sequence: EventSequence,
    n_processes: int,
    rng: np.random.Generator,
    *,
    config: FitConfig | None = None,
    n_samples: int = 200,
    burn_in: int = 50,
    thin: int = 2,
) -> GibbsResult:
    """Run the parent-augmented Gibbs sampler on one sequence.

    Parameters
    ----------
    sequence:
        The observed events.
    n_processes:
        Number of communities ``K``.
    rng:
        Sampling randomness.
    config:
        Priors and kernel, shared with the EM fit.  ``learn_beta`` is
        ignored (the kernel stays fixed, as in the paper's sampler).
    n_samples, burn_in, thin:
        Chain schedule; ``n_samples`` counts *kept* samples.
    """
    if n_samples < 1 or burn_in < 0 or thin < 1:
        raise ValueError("invalid chain schedule")
    config = config or FitConfig()
    kernel: ExponentialKernel = config.kernel
    window = kernel.support_window(config.window_mass)
    k = n_processes
    n = len(sequence)
    processes = sequence.processes
    horizon = sequence.horizon
    counts = sequence.counts(k).astype(np.float64)

    # Initialise rates from the empirical event rates.
    background = np.maximum(counts / horizon, 1e-6) * 0.5
    weights = np.full((k, k), 0.01)
    model = HawkesModel(background=background, weights=weights, kernel=kernel)

    exposure = np.zeros(k)
    if n:
        remaining = np.asarray(kernel.integral(horizon - sequence.times))
        np.add.at(exposure, processes, remaining)

    kept_background = []
    kept_weights = []
    root_counts = np.zeros((n, k))
    total_iterations = burn_in + n_samples * thin
    for iteration in range(total_iterations):
        parents = _sample_parents(model, sequence, rng, window)
        # Conjugate rate updates given the hard parent assignment.
        background_events = np.zeros(k)
        edge_events = np.zeros((k, k))
        for event in range(n):
            parent = parents[event]
            if parent == -1:
                background_events[processes[event]] += 1
            else:
                edge_events[processes[parent], processes[event]] += 1
        background = rng.gamma(
            config.background_prior_shape + background_events,
            1.0 / (config.background_prior_rate + horizon),
        )
        weights = rng.gamma(
            config.weight_prior_shape + edge_events,
            1.0 / (config.weight_prior_rate + exposure)[:, None],
        )
        model = HawkesModel(background=background, weights=weights, kernel=kernel)
        if iteration >= burn_in and (iteration - burn_in) % thin == 0:
            kept_background.append(background.copy())
            kept_weights.append(weights.copy())
            roots = _roots_from_parents(parents, processes)
            root_counts[np.arange(n), roots] += 1.0

    background_samples = np.array(kept_background)
    weight_samples = np.array(kept_weights)
    n_kept = len(kept_background)
    root_distribution = (
        root_counts / n_kept if n else np.zeros((0, k))
    )
    posterior_mean = HawkesModel(
        background=background_samples.mean(axis=0),
        weights=weight_samples.mean(axis=0),
        kernel=kernel,
    )
    return GibbsResult(
        posterior_mean=posterior_mean,
        background_samples=background_samples,
        weight_samples=weight_samples,
        root_distribution=root_distribution,
    )
