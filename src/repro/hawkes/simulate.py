"""Hawkes simulation: exact branching sampler and Ogata thinning.

The branching (cluster) representation of a Hawkes process is exact:
immigrants arrive as a Poisson process at the background rates; each event
on process ``i`` independently spawns ``Poisson(W[i, j])`` children on
each process ``j`` at kernel-distributed delays.  The sampler therefore
returns *ground-truth parents and root communities* — exactly the latent
structure the paper's influence estimation infers — which lets the test
suite validate fitting and attribution against truth.

Ogata's thinning algorithm is implemented as an independent cross-check.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hawkes.kernels import ExponentialKernel
from repro.hawkes.model import EventSequence, HawkesModel

__all__ = ["SimulationResult", "simulate_branching", "simulate_thinning"]


@dataclass(frozen=True)
class SimulationResult:
    """A simulated sequence plus its latent branching structure.

    Attributes
    ----------
    sequence:
        The observable events.
    parents:
        Per event, the index of its parent event, or ``-1`` for
        immigrants (background events).
    roots:
        Per event, the process index of the *root ancestor*'s community —
        the ground truth for root-cause attribution.
    """

    sequence: EventSequence
    parents: np.ndarray
    roots: np.ndarray


def simulate_branching(
    model: HawkesModel,
    horizon: float,
    rng: np.random.Generator,
    *,
    max_events: int = 1_000_000,
    background_modulation=None,
    modulation_max: float = 1.0,
) -> SimulationResult:
    """Exact simulation via the branching representation.

    Parameters
    ----------
    background_modulation:
        Optional callable ``m(times) -> multipliers`` — or a sequence of
        one callable per process — making the immigrant (background) rate
        inhomogeneous: the rate at time ``t`` is ``background * m(t)``.
        Sampled by thinning against ``modulation_max``, which must
        upper-bound every ``m``.  Offspring dynamics are unaffected.
        Used by the synthetic world to inject real-world-event spikes
        (e.g. the election window of Fig. 8) and per-community activity
        ramps (Gab's growth).

    Raises
    ------
    ValueError
        If the model is super-critical (spectral radius >= 1) or the
        realisation exceeds ``max_events``.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if modulation_max <= 0:
        raise ValueError("modulation_max must be positive")
    if model.spectral_radius() >= 1.0:
        raise ValueError(
            "model is super-critical (spectral radius >= 1); "
            "the branching simulation would not terminate"
        )
    k = model.n_processes
    times: list[float] = []
    processes: list[int] = []
    parent_of: list[int] = []
    root_of: list[int] = []

    # Immigrants (thinned against modulation_max when inhomogeneous).
    pending: list[int] = []  # indices whose offspring are not yet drawn
    for process in range(k):
        rate = model.background[process]
        if rate <= 0:
            continue
        if background_modulation is None or callable(background_modulation):
            modulation = background_modulation
        else:
            modulation = background_modulation[process]
        count = rng.poisson(rate * modulation_max * horizon)
        candidate_times = np.sort(rng.uniform(0.0, horizon, size=count))
        if modulation is not None and count:
            accept_probability = (
                np.asarray(modulation(candidate_times), dtype=np.float64)
                / modulation_max
            )
            if np.any(accept_probability > 1.0 + 1e-9):
                raise ValueError("modulation exceeds modulation_max")
            accept_probability = np.clip(accept_probability, 0.0, 1.0)
            keep = rng.random(count) < accept_probability
            candidate_times = candidate_times[keep]
        for t in candidate_times:
            times.append(float(t))
            processes.append(process)
            parent_of.append(-1)
            root_of.append(process)
            pending.append(len(times) - 1)

    # Offspring cascade.
    cursor = 0
    while cursor < len(pending):
        event_index = pending[cursor]
        cursor += 1
        t_parent = times[event_index]
        source = processes[event_index]
        root = root_of[event_index]
        for target in range(k):
            expected = model.weights[source, target]
            if expected <= 0:
                continue
            n_children = rng.poisson(expected)
            if n_children == 0:
                continue
            delays = model.kernel.sample(rng, size=n_children)
            for delay in np.atleast_1d(delays):
                t_child = t_parent + float(delay)
                if t_child > horizon:
                    continue
                times.append(t_child)
                processes.append(target)
                parent_of.append(event_index)
                root_of.append(root)
                pending.append(len(times) - 1)
        if len(times) > max_events:
            raise ValueError(f"simulation exceeded max_events={max_events}")

    order = np.argsort(np.array(times), kind="stable")
    remap = np.empty(len(times), dtype=np.int64)
    remap[order] = np.arange(len(times))
    sorted_parents = np.array(
        [-1 if parent_of[i] == -1 else int(remap[parent_of[i]]) for i in order],
        dtype=np.int64,
    )
    sequence = EventSequence(
        times=np.array(times)[order],
        processes=np.array(processes, dtype=np.int64)[order],
        horizon=horizon,
    )
    return SimulationResult(
        sequence=sequence,
        parents=sorted_parents,
        roots=np.array(root_of, dtype=np.int64)[order],
    )


def simulate_thinning(
    model: HawkesModel,
    horizon: float,
    rng: np.random.Generator,
    *,
    max_events: int = 1_000_000,
) -> EventSequence:
    """Ogata's modified thinning algorithm (no latent structure).

    Kept as an independent implementation to cross-validate the branching
    sampler's marginal law in tests.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if model.spectral_radius() >= 1.0:
        raise ValueError("model is super-critical (spectral radius >= 1)")
    if not isinstance(model.kernel, ExponentialKernel):
        raise TypeError(
            "thinning relies on the exponential kernel's decay recursion; "
            "use simulate_branching for other kernels"
        )
    k = model.n_processes
    beta = model.kernel.beta
    # Recursive excitation state: excitation[j] is the summed kernel
    # contribution to process j at the current time.
    excitation = np.zeros(k)
    t = 0.0
    times: list[float] = []
    processes: list[int] = []
    while True:
        upper = float(model.background.sum() + excitation.sum())
        if upper <= 0:
            break
        wait = rng.exponential(1.0 / upper)
        t_new = t + wait
        if t_new > horizon:
            break
        # Exponential kernel decays multiplicatively between events.
        excitation = excitation * np.exp(-beta * wait)
        t = t_new
        lambdas = model.background + excitation
        total = float(lambdas.sum())
        if rng.uniform(0.0, upper) <= total:
            target = int(rng.choice(k, p=lambdas / total))
            times.append(t)
            processes.append(target)
            excitation = excitation + model.weights[target] * beta
            if len(times) > max_events:
                raise ValueError(f"simulation exceeded max_events={max_events}")
    return EventSequence(
        times=np.array(times),
        processes=np.array(processes, dtype=np.int64),
        horizon=horizon,
    )
