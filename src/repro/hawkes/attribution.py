"""Root-cause influence estimation — the paper's Section 5.1 improvement.

For each event, the fitted model yields probabilities over its possible
causes: the community's background rate or any sufficiently recent earlier
event.  The *root cause* distribution of an event propagates those
probabilities through the cascade:

    R(n) = P(background | n) * onehot(community(n))
           + sum_m P(parent = m | n) * R(m)

Influence from community A to community B is then the expected number of
B's events whose root cause lies in A.  Reported two ways, as in the
paper: as a percentage of the destination community's events (Fig. 11)
and normalised by the source community's event count — the source's
"efficiency" (Fig. 12).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hawkes.fit import FitConfig, fit_hawkes_em, parent_responsibilities
from repro.hawkes.model import EventSequence, HawkesModel

__all__ = ["InfluenceMatrices", "attribute_root_causes", "influence_from_sequences"]


@dataclass(frozen=True)
class InfluenceMatrices:
    """Aggregated root-cause influence between communities.

    Attributes
    ----------
    expected_events:
        ``(K, K)`` matrix; ``[src, dst]`` is the expected number of events
        on ``dst`` whose root cause is ``src``.  Rows/columns follow the
        community indexing of the fitted sequences.
    event_counts:
        Events per community across the analysed sequences.
    """

    expected_events: np.ndarray
    event_counts: np.ndarray

    @property
    def n_processes(self) -> int:
        return int(self.event_counts.size)

    def percent_of_destination(self) -> np.ndarray:
        """Fig. 11: influence as % of the destination community's events."""
        destination = np.maximum(self.event_counts[None, :], 1)
        return 100.0 * self.expected_events / destination

    def normalized_by_source(self) -> np.ndarray:
        """Fig. 12: influence normalised by the source's event count (%)."""
        source = np.maximum(self.event_counts[:, None], 1)
        return 100.0 * self.expected_events / source

    def external_influence(self) -> np.ndarray:
        """Per source: expected events caused on *other* communities."""
        off_diagonal = self.expected_events.copy()
        np.fill_diagonal(off_diagonal, 0.0)
        return off_diagonal.sum(axis=1)

    def total_external_normalized(self) -> np.ndarray:
        """Fig. 12's "Total Ext" column: external influence per source event (%)."""
        source = np.maximum(self.event_counts, 1)
        return 100.0 * self.external_influence() / source

    def __add__(self, other: "InfluenceMatrices") -> "InfluenceMatrices":
        if self.n_processes != other.n_processes:
            raise ValueError("cannot add influence over different process counts")
        return InfluenceMatrices(
            expected_events=self.expected_events + other.expected_events,
            event_counts=self.event_counts + other.event_counts,
        )

    @classmethod
    def zeros(cls, n_processes: int) -> "InfluenceMatrices":
        return cls(
            expected_events=np.zeros((n_processes, n_processes)),
            event_counts=np.zeros(n_processes, dtype=np.int64),
        )


def attribute_root_causes(
    model: HawkesModel,
    sequence: EventSequence,
) -> np.ndarray:
    """Per-event root-cause distributions under ``model``.

    Returns
    -------
    numpy.ndarray
        ``(n_events, K)`` matrix; row ``n`` is the probability that event
        ``n``'s cascade originated on each community.  Rows sum to 1.
    """
    k = model.n_processes
    n = len(sequence)
    roots = np.zeros((n, k))
    if n == 0:
        return roots
    background_prob, parent_indices, parent_probs = parent_responsibilities(
        model, sequence
    )
    processes = sequence.processes
    for event in range(n):
        roots[event, processes[event]] += background_prob[event]
        idx = parent_indices[event]
        if idx.size:
            # Parents precede the event, so their rows are final.
            roots[event] += parent_probs[event] @ roots[idx]
    return roots


def influence_from_sequences(
    sequences: list[EventSequence],
    n_processes: int,
    *,
    config: FitConfig | None = None,
    pooled: bool = False,
) -> InfluenceMatrices:
    """Fit Hawkes models and aggregate root-cause influence.

    Parameters
    ----------
    sequences:
        One event sequence per meme cluster (the paper fits a separate
        model per cluster and sums the attributed causes).
    n_processes:
        Number of communities.
    pooled:
        Fit a single model over all sequences instead of one per cluster
        (cheaper; used for quick looks and tests).
    """
    if not sequences:
        return InfluenceMatrices.zeros(n_processes)
    totals = InfluenceMatrices.zeros(n_processes)
    if pooled:
        result = fit_hawkes_em(sequences, n_processes, config)
        models = [result.model] * len(sequences)
    else:
        models = [
            fit_hawkes_em([sequence], n_processes, config).model
            for sequence in sequences
        ]
    for model, sequence in zip(models, sequences):
        roots = attribute_root_causes(model, sequence)
        expected = np.zeros((n_processes, n_processes))
        for destination in range(n_processes):
            mask = sequence.processes == destination
            if np.any(mask):
                expected[:, destination] = roots[mask].sum(axis=0)
        totals = totals + InfluenceMatrices(
            expected_events=expected,
            event_counts=sequence.counts(n_processes),
        )
    return totals
