"""Fitting multivariate Hawkes models by MAP-EM over the branching structure.

The paper fits its per-cluster models "using Gibbs sampling as described
in [Linderman & Adams 2015]".  That sampler augments the model with the
latent parent of each event and alternates between sampling parents and
rates.  The deterministic counterpart implemented here runs
expectation-maximisation over the *same* augmentation: the E-step computes
each event's parent responsibilities (background vs. every plausible
earlier event), the M-step re-estimates background rates and the weight
matrix from the expected counts, with conjugate Gamma priors giving MAP
estimates that stay finite on the short per-cluster sequences.

Multiple sequences (one per meme cluster, as in the paper) are pooled by
summing sufficient statistics, or fitted independently — both supported.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hawkes.kernels import ExponentialKernel
from repro.hawkes.model import EventSequence, HawkesModel

__all__ = ["FitConfig", "FitResult", "fit_hawkes_em", "parent_responsibilities"]


@dataclass(frozen=True)
class FitConfig:
    """Hyper-parameters of the EM fit.

    Gamma priors ``Gamma(shape, rate)`` act as pseudo-counts: they
    prevent zero/degenerate estimates on sparse clusters (the same role
    the priors play in the Gibbs formulation).  ``weight_prior_rate``
    adds pseudo-exposure that shrinks spurious cross-community weights:
    errors in non-negative weights cannot cancel, and for *low-volume*
    sources the small exposure denominator creates a feedback loop that
    inflates their estimated outgoing influence.  Five events of
    pseudo-exposure is negligible for active communities and breaks the
    loop for tiny ones (ground-truth experiments in
    ``bench_ablation_kernel`` / EXPERIMENTS.md).

    The default kernel is deliberately *tight* (``beta = 4``, a mean
    reaction delay of six hours): ground-truth experiments on the
    synthetic world show root-cause attribution degrades with wide
    excitation windows — distant high-volume sources soak up credit —
    while tight windows recover the planted influence matrix closely
    even when the true decay is slower.  (The paper similarly fixes its
    impulse shape.)  ``bench_ablation_kernel`` quantifies this.

    With ``learn_beta`` the kernel decay rate is instead re-estimated
    each M-step from the expected triggered delays
    (``beta = sum r / sum r*dt``).  It recovers the true timescale well
    but inherits the wide-window attribution bias, so it is off by
    default.
    """

    kernel: ExponentialKernel = field(
        default_factory=lambda: ExponentialKernel(4.0)
    )
    max_iterations: int = 100
    tolerance: float = 1e-6
    background_prior_shape: float = 1.01
    background_prior_rate: float = 0.01
    weight_prior_shape: float = 1.01
    weight_prior_rate: float = 5.0
    window_mass: float = 0.999
    learn_beta: bool = False
    beta_bounds: tuple[float, float] = (0.05, 50.0)

    def __post_init__(self) -> None:
        if self.max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if self.tolerance < 0:
            raise ValueError("tolerance must be non-negative")
        if self.beta_bounds[0] <= 0 or self.beta_bounds[0] >= self.beta_bounds[1]:
            raise ValueError("beta_bounds must be an increasing positive pair")


@dataclass(frozen=True)
class FitResult:
    """Outcome of :func:`fit_hawkes_em`."""

    model: HawkesModel
    n_iterations: int
    converged: bool
    log_likelihoods: tuple[float, ...]


def parent_responsibilities(
    model: HawkesModel,
    sequence: EventSequence,
    *,
    window: float | None = None,
) -> tuple[np.ndarray, list[np.ndarray], list[np.ndarray]]:
    """E-step: per-event probabilities over possible causes.

    Returns
    -------
    (background_prob, parent_indices, parent_probs):
        ``background_prob[n]`` is the probability event ``n`` is an
        immigrant; ``parent_indices[n]`` lists candidate parent events
        (within ``window``); ``parent_probs[n]`` their probabilities.
        For each event the probabilities sum to 1.
    """
    times = sequence.times
    processes = sequence.processes
    n = len(sequence)
    window = window or model.kernel.support_window()
    background_prob = np.ones(n)
    parent_indices: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * n
    parent_probs: list[np.ndarray] = [np.empty(0)] * n
    start = 0
    for event in range(n):
        t = times[event]
        while times[start] < t - window:
            start += 1
        candidates = np.arange(start, event)
        if candidates.size:
            dts = t - times[candidates]
            positive = dts > 0  # simultaneous events cannot cause each other
            candidates = candidates[positive]
        if candidates.size == 0:
            continue
        dts = t - times[candidates]
        rates = model.weights[
            processes[candidates], processes[event]
        ] * np.asarray(model.kernel.density(dts))
        mu = model.background[processes[event]]
        total = mu + rates.sum()
        if total <= 0:
            continue
        background_prob[event] = mu / total
        keep = rates > 0
        parent_indices[event] = candidates[keep]
        parent_probs[event] = rates[keep] / total
    return background_prob, parent_indices, parent_probs


def fit_hawkes_em(
    sequences: list[EventSequence],
    n_processes: int,
    config: FitConfig | None = None,
    *,
    initial_model: HawkesModel | None = None,
) -> FitResult:
    """Fit one Hawkes model to one or more event sequences.

    Parameters
    ----------
    sequences:
        Realisations assumed i.i.d. under the model (e.g. one per meme
        cluster when pooling, or a singleton list for per-cluster fits).
    n_processes:
        Number of processes ``K`` (communities).
    config:
        EM hyper-parameters.
    initial_model:
        Optional warm start; default initialisation uses empirical event
        rates and a small uniform weight matrix.
    """
    if n_processes < 1:
        raise ValueError("n_processes must be >= 1")
    if not sequences:
        raise ValueError("need at least one sequence")
    for sequence in sequences:
        if len(sequence) and int(sequence.processes.max()) >= n_processes:
            raise ValueError("sequence references a process >= n_processes")
    config = config or FitConfig()
    total_horizon = float(sum(s.horizon for s in sequences))
    counts = np.zeros(n_processes, dtype=np.float64)
    for sequence in sequences:
        counts += sequence.counts(n_processes)

    if initial_model is not None:
        model = initial_model
    else:
        background0 = np.maximum(counts / total_horizon, 1e-6) * 0.5
        weights0 = np.full((n_processes, n_processes), 0.05)
        model = HawkesModel(
            background=background0, weights=weights0, kernel=config.kernel
        )

    log_likelihoods: list[float] = []
    converged = False
    iteration = 0
    for iteration in range(1, config.max_iterations + 1):
        window = model.kernel.support_window(config.window_mass)
        # Sufficient statistics accumulated across sequences.
        background_counts = np.zeros(n_processes)
        edge_counts = np.zeros((n_processes, n_processes))
        triggered_mass = 0.0  # sum of parent responsibilities
        triggered_delay = 0.0  # sum of responsibility-weighted delays
        # Expected kernel mass emitted by events of each source process,
        # accounting for right-censoring at the horizon.
        exposure = np.zeros(n_processes)
        for sequence in sequences:
            bg_prob, parent_idx, parent_prob = parent_responsibilities(
                model, sequence, window=window
            )
            processes = sequence.processes
            times = sequence.times
            np.add.at(background_counts, processes, bg_prob)
            for event in range(len(sequence)):
                idx = parent_idx[event]
                if idx.size:
                    np.add.at(
                        edge_counts,
                        (processes[idx], np.full(idx.size, processes[event])),
                        parent_prob[event],
                    )
                    triggered_mass += float(parent_prob[event].sum())
                    triggered_delay += float(
                        (parent_prob[event] * (times[event] - times[idx])).sum()
                    )
            if len(sequence):
                remaining = np.asarray(
                    model.kernel.integral(sequence.horizon - sequence.times)
                )
                np.add.at(exposure, processes, remaining)

        new_background = (
            background_counts + config.background_prior_shape - 1.0
        ) / (total_horizon + config.background_prior_rate)
        new_background = np.maximum(new_background, 0.0)
        denominator = exposure + config.weight_prior_rate
        new_weights = (
            edge_counts + config.weight_prior_shape - 1.0
        ) / denominator[:, None]
        new_weights = np.maximum(new_weights, 0.0)

        kernel = model.kernel
        if config.learn_beta and triggered_delay > 0 and triggered_mass > 1.0:
            beta = float(
                np.clip(
                    triggered_mass / triggered_delay,
                    config.beta_bounds[0],
                    config.beta_bounds[1],
                )
            )
            kernel = ExponentialKernel(beta)

        new_model = HawkesModel(
            background=new_background, weights=new_weights, kernel=kernel
        )
        log_likelihood = float(
            sum(new_model.log_likelihood(s) for s in sequences)
        )
        log_likelihoods.append(log_likelihood)
        if (
            len(log_likelihoods) >= 2
            and abs(log_likelihoods[-1] - log_likelihoods[-2])
            <= config.tolerance * max(1.0, abs(log_likelihoods[-2]))
        ):
            model = new_model
            converged = True
            break
        model = new_model

    return FitResult(
        model=model,
        n_iterations=iteration,
        converged=converged,
        log_likelihoods=tuple(log_likelihoods),
    )
