"""Loss functions for the classifier substrate."""

from __future__ import annotations

import numpy as np

__all__ = ["SoftmaxCrossEntropy", "softmax"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax with max-shift numerical stabilisation."""
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class SoftmaxCrossEntropy:
    """Softmax + cross-entropy against integer class labels.

    The gradient is computed with respect to the *logits* (the usual
    ``p - onehot(y)`` form), so the network's last layer is linear.
    """

    def __init__(self) -> None:
        self._probabilities: np.ndarray | None = None
        self._labels: np.ndarray | None = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        if logits.ndim != 2:
            raise ValueError("logits must be (N, n_classes)")
        labels = np.asarray(labels, dtype=np.int64)
        if labels.shape != (logits.shape[0],):
            raise ValueError("labels must be (N,) integer classes")
        probabilities = softmax(logits)
        self._probabilities = probabilities
        self._labels = labels
        picked = probabilities[np.arange(len(labels)), labels]
        return float(-np.log(np.clip(picked, 1e-12, None)).mean())

    def backward(self) -> np.ndarray:
        if self._probabilities is None or self._labels is None:
            raise RuntimeError("backward called before forward")
        grad = self._probabilities.copy()
        grad[np.arange(len(self._labels)), self._labels] -= 1.0
        return grad / len(self._labels)
