"""A small from-scratch neural-network substrate (numpy only).

The paper's Step 4 trains a Keras/TensorFlow CNN (2 x conv -> maxpool ->
dense(512) -> dropout(0.5) -> softmax(2)) to remove social-network
screenshots from KYM galleries.  Neither framework is available offline,
so this package implements the needed pieces: layers with explicit
forward/backward passes, losses, optimisers, a sequential model with a
training loop, and the evaluation metrics the paper reports (ROC/AUC,
accuracy, precision, recall, F1).
"""

from repro.nn.layers import (
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    Layer,
    MaxPool2D,
    ReLU,
)
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.metrics import (
    accuracy,
    auc,
    confusion_matrix,
    f1_score,
    precision_recall_f1,
    roc_curve,
)
from repro.nn.model import Sequential, TrainHistory
from repro.nn.optim import SGD, Adam

__all__ = [
    "Layer",
    "Dense",
    "ReLU",
    "Conv2D",
    "MaxPool2D",
    "Flatten",
    "Dropout",
    "SoftmaxCrossEntropy",
    "SGD",
    "Adam",
    "Sequential",
    "TrainHistory",
    "accuracy",
    "precision_recall_f1",
    "f1_score",
    "confusion_matrix",
    "roc_curve",
    "auc",
]
