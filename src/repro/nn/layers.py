"""Neural-network layers with explicit forward/backward passes.

Conventions: activations are ``float64`` arrays shaped ``(N, H, W, C)``
for spatial layers and ``(N, D)`` for dense layers.  Each layer caches
what it needs during ``forward`` and consumes it in ``backward``; the
``params``/``grads`` pairs are consumed by the optimisers.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Layer", "Dense", "ReLU", "Conv2D", "MaxPool2D", "Flatten", "Dropout"]


class Layer:
    """Base layer: stateless by default, trainable layers override."""

    def forward(self, x: np.ndarray, *, training: bool = False) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    @property
    def params(self) -> list[np.ndarray]:
        return []

    @property
    def grads(self) -> list[np.ndarray]:
        return []


class Dense(Layer):
    """Fully connected layer: ``y = x @ W + b``.

    Weights use He initialisation, matched to the ReLU activations the
    screenshot classifier uses.
    """

    def __init__(
        self, in_features: int, out_features: int, rng: np.random.Generator
    ) -> None:
        if in_features <= 0 or out_features <= 0:
            raise ValueError("feature dimensions must be positive")
        scale = np.sqrt(2.0 / in_features)
        self.weight = rng.normal(0.0, scale, size=(in_features, out_features))
        self.bias = np.zeros(out_features)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray, *, training: bool = False) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.weight.shape[0]:
            raise ValueError(
                f"Dense expected (N, {self.weight.shape[0]}), got {x.shape}"
            )
        self._input = x
        return x @ self.weight + self.bias

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise RuntimeError("backward called before forward")
        self.grad_weight[:] = self._input.T @ grad_output
        self.grad_bias[:] = grad_output.sum(axis=0)
        return grad_output @ self.weight.T

    @property
    def params(self) -> list[np.ndarray]:
        return [self.weight, self.bias]

    @property
    def grads(self) -> list[np.ndarray]:
        return [self.grad_weight, self.grad_bias]


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self) -> None:
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, *, training: bool = False) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._mask


def _im2col(
    x: np.ndarray, kernel: int, stride: int
) -> tuple[np.ndarray, int, int]:
    """Rearrange ``(N, H, W, C)`` into patch rows for a matmul convolution.

    Returns ``(patches, out_h, out_w)`` where ``patches`` has shape
    ``(N * out_h * out_w, kernel * kernel * C)``.
    """
    n, h, w, c = x.shape
    out_h = (h - kernel) // stride + 1
    out_w = (w - kernel) // stride + 1
    shape = (n, out_h, out_w, kernel, kernel, c)
    strides = (
        x.strides[0],
        x.strides[1] * stride,
        x.strides[2] * stride,
        x.strides[1],
        x.strides[2],
        x.strides[3],
    )
    windows = np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)
    patches = windows.reshape(n * out_h * out_w, kernel * kernel * c)
    return np.ascontiguousarray(patches), out_h, out_w


class Conv2D(Layer):
    """Valid (no padding) 2-D convolution via im2col + matmul."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        rng: np.random.Generator,
        *,
        stride: int = 1,
    ) -> None:
        if kernel_size <= 0 or stride <= 0:
            raise ValueError("kernel_size and stride must be positive")
        fan_in = kernel_size * kernel_size * in_channels
        scale = np.sqrt(2.0 / fan_in)
        self.weight = rng.normal(0.0, scale, size=(fan_in, out_channels))
        self.bias = np.zeros(out_channels)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self.kernel_size = kernel_size
        self.stride = stride
        self.in_channels = in_channels
        self.out_channels = out_channels
        self._cache: tuple[np.ndarray, tuple[int, ...], int, int] | None = None

    def forward(self, x: np.ndarray, *, training: bool = False) -> np.ndarray:
        if x.ndim != 4 or x.shape[3] != self.in_channels:
            raise ValueError(
                f"Conv2D expected (N, H, W, {self.in_channels}), got {x.shape}"
            )
        patches, out_h, out_w = _im2col(x, self.kernel_size, self.stride)
        self._cache = (patches, x.shape, out_h, out_w)
        out = patches @ self.weight + self.bias
        return out.reshape(x.shape[0], out_h, out_w, self.out_channels)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        patches, x_shape, out_h, out_w = self._cache
        n, h, w, c = x_shape
        grad_flat = grad_output.reshape(-1, self.out_channels)
        self.grad_weight[:] = patches.T @ grad_flat
        self.grad_bias[:] = grad_flat.sum(axis=0)
        grad_patches = grad_flat @ self.weight.T
        grad_patches = grad_patches.reshape(
            n, out_h, out_w, self.kernel_size, self.kernel_size, c
        )
        grad_input = np.zeros(x_shape)
        k, s = self.kernel_size, self.stride
        for dy in range(k):
            for dx in range(k):
                grad_input[
                    :, dy : dy + out_h * s : s, dx : dx + out_w * s : s, :
                ] += grad_patches[:, :, :, dy, dx, :]
        return grad_input

    @property
    def params(self) -> list[np.ndarray]:
        return [self.weight, self.bias]

    @property
    def grads(self) -> list[np.ndarray]:
        return [self.grad_weight, self.grad_bias]


class MaxPool2D(Layer):
    """Non-overlapping max pooling over ``pool x pool`` windows."""

    def __init__(self, pool: int = 2) -> None:
        if pool <= 0:
            raise ValueError("pool must be positive")
        self.pool = pool
        self._cache: tuple[np.ndarray, tuple[int, ...]] | None = None

    def forward(self, x: np.ndarray, *, training: bool = False) -> np.ndarray:
        n, h, w, c = x.shape
        p = self.pool
        oh, ow = h // p, w // p
        trimmed = x[:, : oh * p, : ow * p, :]
        windows = trimmed.reshape(n, oh, p, ow, p, c)
        out = windows.max(axis=(2, 4))
        # Mask of argmax positions for the backward pass.
        mask = windows == out[:, :, None, :, None, :]
        self._cache = (mask, x.shape)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        mask, x_shape = self._cache
        n, h, w, c = x_shape
        p = self.pool
        oh, ow = h // p, w // p
        # Ties split gradient equally to keep the pass exact.
        counts = mask.sum(axis=(2, 4), keepdims=True)
        spread = mask * (grad_output[:, :, None, :, None, :] / counts)
        grad_input = np.zeros(x_shape)
        grad_input[:, : oh * p, : ow * p, :] = spread.reshape(n, oh * p, ow * p, c)
        return grad_input


class Flatten(Layer):
    """Flatten ``(N, ...)`` to ``(N, D)``."""

    def __init__(self) -> None:
        self._shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, *, training: bool = False) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._shape is None:
            raise RuntimeError("backward called before forward")
        return grad_output.reshape(self._shape)


class Dropout(Layer):
    """Inverted dropout (Srivastava et al. 2014), active only in training."""

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        if not 0 <= rate < 1:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self._rng = rng
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, *, training: bool = False) -> np.ndarray:
        if not training or self.rate == 0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self._rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask
