"""Sequential model with a mini-batch training loop."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.nn.layers import Layer
from repro.nn.losses import SoftmaxCrossEntropy, softmax

__all__ = ["Sequential", "TrainHistory"]


@dataclass
class TrainHistory:
    """Per-epoch training diagnostics."""

    losses: list[float] = field(default_factory=list)
    accuracies: list[float] = field(default_factory=list)


class Sequential:
    """A straight stack of layers trained with softmax cross-entropy.

    Parameters
    ----------
    layers:
        The layers in forward order.
    """

    def __init__(self, layers: list[Layer]) -> None:
        if not layers:
            raise ValueError("a model needs at least one layer")
        self.layers = list(layers)
        self.loss = SoftmaxCrossEntropy()

    def forward(self, x: np.ndarray, *, training: bool = False) -> np.ndarray:
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    @property
    def params(self) -> list[np.ndarray]:
        return [p for layer in self.layers for p in layer.params]

    @property
    def grads(self) -> list[np.ndarray]:
        return [g for layer in self.layers for g in layer.grads]

    def predict_proba(self, x: np.ndarray, *, batch_size: int = 256) -> np.ndarray:
        """Class probabilities, batched to bound memory."""
        chunks = [
            softmax(self.forward(x[i : i + batch_size], training=False))
            for i in range(0, len(x), batch_size)
        ]
        return np.concatenate(chunks, axis=0)

    def predict(self, x: np.ndarray, *, batch_size: int = 256) -> np.ndarray:
        """Hard class predictions."""
        return self.predict_proba(x, batch_size=batch_size).argmax(axis=1)

    def fit(
        self,
        x: np.ndarray,
        y: np.ndarray,
        optimizer,
        *,
        epochs: int = 5,
        batch_size: int = 32,
        rng: np.random.Generator | None = None,
        verbose: bool = False,
    ) -> TrainHistory:
        """Train with shuffled mini-batches.

        Parameters
        ----------
        x, y:
            Inputs and integer class labels.
        optimizer:
            Object with ``step(params, grads)``.
        rng:
            Shuffling source; defaults to a fixed-seed generator so runs
            are reproducible.
        """
        y = np.asarray(y, dtype=np.int64)
        if len(x) != len(y):
            raise ValueError("x and y must be aligned")
        if len(x) == 0:
            raise ValueError("cannot fit on an empty dataset")
        rng = rng or np.random.default_rng(0)
        history = TrainHistory()
        for epoch in range(epochs):
            order = rng.permutation(len(x))
            epoch_loss = 0.0
            n_correct = 0
            for start in range(0, len(x), batch_size):
                batch = order[start : start + batch_size]
                logits = self.forward(x[batch], training=True)
                loss_value = self.loss.forward(logits, y[batch])
                self.backward(self.loss.backward())
                optimizer.step(self.params, self.grads)
                epoch_loss += loss_value * len(batch)
                n_correct += int((logits.argmax(axis=1) == y[batch]).sum())
            history.losses.append(epoch_loss / len(x))
            history.accuracies.append(n_correct / len(x))
            if verbose:
                print(
                    f"epoch {epoch + 1}/{epochs}: "
                    f"loss={history.losses[-1]:.4f} "
                    f"acc={history.accuracies[-1]:.3f}"
                )
        return history
