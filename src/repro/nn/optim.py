"""Optimisers updating ``(param, grad)`` pairs in place."""

from __future__ import annotations

import numpy as np

__all__ = ["SGD", "Adam"]


class SGD:
    """Stochastic gradient descent with classical momentum."""

    def __init__(self, learning_rate: float = 0.01, momentum: float = 0.9) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        if not 0 <= momentum < 1:
            raise ValueError("momentum must be in [0, 1)")
        self.learning_rate = learning_rate
        self.momentum = momentum
        self._velocity: dict[int, np.ndarray] = {}

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        for index, (param, grad) in enumerate(zip(params, grads)):
            velocity = self._velocity.setdefault(index, np.zeros_like(param))
            velocity *= self.momentum
            velocity -= self.learning_rate * grad
            param += velocity


class Adam:
    """Adam (Kingma & Ba, 2015) with bias correction."""

    def __init__(
        self,
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
    ) -> None:
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self._m: dict[int, np.ndarray] = {}
        self._v: dict[int, np.ndarray] = {}
        self._t = 0

    def step(self, params: list[np.ndarray], grads: list[np.ndarray]) -> None:
        self._t += 1
        for index, (param, grad) in enumerate(zip(params, grads)):
            m = self._m.setdefault(index, np.zeros_like(param))
            v = self._v.setdefault(index, np.zeros_like(param))
            m *= self.beta1
            m += (1 - self.beta1) * grad
            v *= self.beta2
            v += (1 - self.beta2) * grad * grad
            m_hat = m / (1 - self.beta1**self._t)
            v_hat = v / (1 - self.beta2**self._t)
            param -= self.learning_rate * m_hat / (np.sqrt(v_hat) + self.epsilon)
