"""Binary-classification metrics: the numbers the paper's Appendix C reports.

The screenshot classifier is evaluated with a ROC curve (Fig. 19,
AUC = 0.96) plus accuracy 91.3%, precision 94.3%, recall 93.5% and
F1 93.9%.  These implementations are framework-free and exact.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "confusion_matrix",
    "accuracy",
    "precision_recall_f1",
    "f1_score",
    "roc_curve",
    "auc",
]


def confusion_matrix(y_true: np.ndarray, y_pred: np.ndarray) -> np.ndarray:
    """2x2 matrix ``[[TN, FP], [FN, TP]]`` for binary labels."""
    y_true = np.asarray(y_true, dtype=np.int64)
    y_pred = np.asarray(y_pred, dtype=np.int64)
    if y_true.shape != y_pred.shape:
        raise ValueError("y_true and y_pred must be aligned")
    matrix = np.zeros((2, 2), dtype=np.int64)
    for t, p in ((0, 0), (0, 1), (1, 0), (1, 1)):
        matrix[t, p] = int(np.sum((y_true == t) & (y_pred == p)))
    return matrix


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of correct predictions."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.size == 0:
        raise ValueError("empty evaluation set")
    return float(np.mean(y_true == y_pred))


def precision_recall_f1(
    y_true: np.ndarray, y_pred: np.ndarray
) -> tuple[float, float, float]:
    """Precision, recall and F1 of the positive class (label 1)."""
    matrix = confusion_matrix(y_true, y_pred)
    tp = matrix[1, 1]
    fp = matrix[0, 1]
    fn = matrix[1, 0]
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    if precision + recall == 0:
        return float(precision), float(recall), 0.0
    f1 = 2 * precision * recall / (precision + recall)
    return float(precision), float(recall), float(f1)


def f1_score(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """F1 of the positive class."""
    return precision_recall_f1(y_true, y_pred)[2]


def roc_curve(
    y_true: np.ndarray, scores: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """ROC curve from scores of the positive class.

    Returns ``(fpr, tpr, thresholds)`` with points ordered by decreasing
    threshold, starting at (0, 0) and ending at (1, 1).
    """
    y_true = np.asarray(y_true, dtype=np.int64)
    scores = np.asarray(scores, dtype=np.float64)
    if y_true.shape != scores.shape:
        raise ValueError("y_true and scores must be aligned")
    n_pos = int((y_true == 1).sum())
    n_neg = int((y_true == 0).sum())
    if n_pos == 0 or n_neg == 0:
        raise ValueError("ROC needs both classes present")
    order = np.argsort(-scores, kind="stable")
    sorted_true = y_true[order]
    sorted_scores = scores[order]
    tps = np.cumsum(sorted_true == 1)
    fps = np.cumsum(sorted_true == 0)
    # Keep only the last point of each tied-score run.
    distinct = np.flatnonzero(np.diff(sorted_scores) != 0)
    keep = np.concatenate([distinct, [len(sorted_scores) - 1]])
    tpr = np.concatenate([[0.0], tps[keep] / n_pos])
    fpr = np.concatenate([[0.0], fps[keep] / n_neg])
    thresholds = np.concatenate([[np.inf], sorted_scores[keep]])
    return fpr, tpr, thresholds


def auc(fpr: np.ndarray, tpr: np.ndarray) -> float:
    """Area under a curve by the trapezoid rule (expects sorted fpr)."""
    fpr = np.asarray(fpr, dtype=np.float64)
    tpr = np.asarray(tpr, dtype=np.float64)
    if fpr.shape != tpr.shape or fpr.size < 2:
        raise ValueError("need at least two aligned curve points")
    if np.any(np.diff(fpr) < 0):
        raise ValueError("fpr must be non-decreasing")
    return float(np.trapezoid(tpr, fpr))
