"""Scatter-gather routing over replicated index shards.

:class:`ShardedIndexCluster` owns the cluster's data layout: the corpus
partitioned over N logical shards by rendezvous placement, each shard
held as R bit-identical replica copies.  Batch queries scatter one task
per logical shard through
:meth:`repro.utils.parallel.Executor.supervised_starmap` — which
supplies the per-shard deadline, the fresh-pool retry, the *replica
failover* rung (the remaining copies ride in as ``alternates``),
bisection, and serial fallback — and gather under a deterministic merge:

* ``radius_neighbors``: shard partitions are disjoint, so each query's
  row is the sorted concatenation of its per-shard partial rows —
  bit-identical to the monolithic row for any shard count and any
  replica choice (replicas are copies).
* ``associate``: the global winner is the elementwise minimum of the
  per-shard winners by ``(distance, global medoid position)`` — the
  monolith's exact tie-break, since its medoid array is cluster-id
  ordered.

Both kernels run under ``on_poison="fail"`` (via
:func:`strict_supervision`): a missing shard would silently truncate
result sets, which the bit-identity contract forbids — so a shard that
outlives every replica and every ladder rung raises
:class:`~repro.utils.parallel.PoisonShardError` for the caller's own
quarantine machinery to absorb.

Chaos drills target the ``index:shard`` / ``index:replica`` sites
(:data:`~repro.index_cluster.placement.INDEX_CHAOS_SITES`), keeping
index-cluster faults distinct from the generic parallel sites.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.index_cluster.kernels import (
    shard_associate_kernel,
    shard_radius_kernel,
)
from repro.index_cluster.placement import INDEX_CHAOS_SITES, ShardConfig
from repro.utils.parallel import (
    ExecutionReport,
    Executor,
    ParallelConfig,
    array_splitter,
    range_splitter,
    resolve_parallel,
    strict_supervision,
)
from repro.utils.shm import get_registry, shared_inputs

__all__ = [
    "ShardHealth",
    "ShardedIndexCluster",
    "sharded_associate_unique",
    "sharded_radius_neighbors",
]


def _merge_radius_parts(parts: list[list[np.ndarray]]) -> list[np.ndarray]:
    """Reassemble bisected query-range outputs: list concatenation."""
    return [row for part in parts for row in part]


def _merge_associate_parts(
    parts: list[tuple[np.ndarray, np.ndarray]],
) -> tuple[np.ndarray, np.ndarray]:
    """Reassemble bisected query-array outputs: per-column concatenation."""
    return (
        np.concatenate([part[0] for part in parts]),
        np.concatenate([part[1] for part in parts]),
    )


@dataclass
class ShardHealth:
    """Router-level view of one logical shard after a fan-out."""

    shard: int
    size: int
    replication: int
    serving_replica: int = 0
    failures: int = 0
    outcome: str = "pending"

    def as_dict(self) -> dict:
        return {
            "shard": self.shard,
            "size": self.size,
            "replication": self.replication,
            "serving_replica": self.serving_replica,
            "failures": self.failures,
            "outcome": self.outcome,
        }


class ShardedIndexCluster:
    """N rendezvous-placed shards × R replica copies of a hash corpus.

    Parameters
    ----------
    values:
        1-D ``uint64`` corpus; global positions are positions in this
        array (for the association path, positions in the cluster-id
        ordered medoid array).
    config:
        :class:`~repro.index_cluster.placement.ShardConfig` — shard
        count, replication factor, placement seed.
    parallel:
        Executor configuration for scatter fan-outs.  The cluster
        strips :attr:`~repro.utils.parallel.ParallelConfig.shards`
        before executing (the scatter itself must not recurse into
        another cluster) and honours ``supervision`` and ``chaos``.
    """

    def __init__(
        self,
        values: np.ndarray,
        *,
        config: ShardConfig,
        parallel: ParallelConfig | None = None,
    ) -> None:
        self.config = config
        self.parallel = replace(resolve_parallel(parallel), shards=None)
        values = np.ascontiguousarray(values, dtype=np.uint64).reshape(-1)
        self.n_values = int(values.size)
        placement = config.place(values)
        # replicas[s][r] = (values copy, global positions copy) — each
        # replica is an independent array pair, so a "lost" replica
        # (chaos-killed worker holding it) never taints its twin.
        self.replicas: list[list[tuple[np.ndarray, np.ndarray]]] = []
        self.health: list[ShardHealth] = []
        for s in range(config.n_shards):
            positions = np.flatnonzero(placement == s).astype(np.int64)
            shard_values = values[positions]
            self.replicas.append(
                [
                    (shard_values.copy(), positions.copy())
                    for _ in range(config.replication)
                ]
            )
            self.health.append(
                ShardHealth(
                    shard=s,
                    size=int(positions.size),
                    replication=config.replication,
                )
            )
        self.last_report: ExecutionReport | None = None
        # Under the shm transport every replica pair is published once
        # at construction; scatter tasks then carry descriptors instead
        # of pickling each replica's arrays to the pool per fan-out.
        # The plain arrays above remain the source of truth (serial
        # fallback and the monolith-identity contract never touch shm).
        self._published: list = []
        if self.parallel.uses_shm:
            registry = get_registry()
            self._scatter_replicas = []
            for copies in self.replicas:
                shared_copies = []
                for values, positions in copies:
                    value_ref = registry.publish(values)
                    position_ref = registry.publish(positions)
                    shared_copies.append((value_ref, position_ref))
                    self._published.extend((value_ref, position_ref))
                self._scatter_replicas.append(shared_copies)
        else:
            self._scatter_replicas = self.replicas

    def close(self) -> None:
        """Release the cluster's published shared-memory segments.

        Idempotent; a no-op on the pickle transport.  In-flight
        resolutions keep working (an unlinked segment stays mapped
        until each attachment closes), so closing after the last
        fan-out is always safe.
        """
        if not self._published:
            return
        registry = get_registry()
        for ref in self._published:
            registry.release(ref)
        self._published = []
        self._scatter_replicas = self.replicas

    # -- scatter-gather -------------------------------------------------

    def _scatter(self, make_args, kernel, split, merge):
        """Fan one task per logical shard through the supervised executor.

        ``make_args(values, positions)`` builds a kernel call for one
        replica's arrays; replicas past the serving one become the
        ladder's ``alternates``.  Updates per-shard health from the
        resulting :class:`ShardReport`s and returns the supervised
        results in shard order (``on_poison="fail"`` guarantees no
        gaps).
        """
        tasks = []
        alternates = []
        for s in range(self.config.n_shards):
            serving = self.health[s].serving_replica % self.config.replication
            copies = self._scatter_replicas[s]
            rotation = [
                copies[(serving + r) % self.config.replication]
                for r in range(self.config.replication)
            ]
            tasks.append(make_args(*rotation[0]))
            alternates.append(
                [make_args(*copy) for copy in rotation[1:]]
            )
        supervised = Executor(self.parallel).supervised_starmap(
            kernel,
            tasks,
            policy=strict_supervision(self.parallel),
            split=split,
            merge=merge,
            chaos=self.parallel.chaos,
            alternates=alternates,
            chaos_sites=INDEX_CHAOS_SITES,
        )
        self.last_report = supervised.report
        for s, shard_report in enumerate(supervised.report.shards):
            health = self.health[s]
            health.outcome = shard_report.outcome
            if shard_report.recovered:
                health.failures += 1
            if shard_report.outcome == "replica":
                # The replica that answered stays the serving one.
                health.serving_replica = (
                    health.serving_replica + shard_report.replica
                ) % self.config.replication
        return supervised.results

    def radius_neighbors(
        self, queries: np.ndarray, radius: int
    ) -> list[np.ndarray]:
        """Sorted global neighbour positions per query, across all shards."""
        queries = np.ascontiguousarray(queries, dtype=np.uint64).reshape(-1)
        n = int(queries.size)
        if n == 0:
            return []
        with shared_inputs(self.parallel, queries) as (queries_src,):
            partials = self._scatter(
                lambda values, positions: (
                    queries_src,
                    0,
                    n,
                    values,
                    positions,
                    radius,
                ),
                shard_radius_kernel,
                range_splitter(1, 2),
                _merge_radius_parts,
            )
        # Deterministic gather: per query, partitions are disjoint, so
        # a plain sort of the concatenated partial rows reproduces the
        # monolithic sorted-unique row.
        rows: list[np.ndarray] = []
        for i in range(n):
            parts = [part[i] for part in partials if part[i].size]
            if not parts:
                rows.append(np.empty(0, dtype=np.int64))
            elif len(parts) == 1:
                rows.append(parts[0])
            else:
                rows.append(np.sort(np.concatenate(parts)))
        return rows

    def associate(
        self, unique: np.ndarray, theta: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Global nearest-medoid ``(position, distance)`` per unique hash.

        Positions index the cluster's value array (the cluster-id
        ordered medoid array); ``-1`` means nothing within ``theta``.
        """
        unique = np.ascontiguousarray(unique, dtype=np.uint64).reshape(-1)
        if unique.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        with shared_inputs(self.parallel, unique) as (unique_src,):
            partials = self._scatter(
                lambda values, positions: (
                    unique_src,
                    values,
                    positions,
                    theta,
                ),
                shard_associate_kernel,
                array_splitter(0),
                _merge_associate_parts,
            )
        best_position, best_distance = partials[0]
        best_position = best_position.copy()
        best_distance = best_distance.copy()
        for position, distance in partials[1:]:
            matched = distance >= 0
            better = matched & (
                (best_distance < 0)
                | (distance < best_distance)
                | ((distance == best_distance) & (position < best_position))
            )
            best_position[better] = position[better]
            best_distance[better] = distance[better]
        return best_position, best_distance

    def health_snapshot(self) -> list[dict]:
        """Per-shard health dicts (for ``ServiceStats`` / ``health()``)."""
        return [health.as_dict() for health in self.health]


def sharded_radius_neighbors(
    hashes: np.ndarray,
    radius: int,
    *,
    parallel: ParallelConfig,
) -> list[np.ndarray]:
    """Self-join radius neighbourhoods through a sharded cluster.

    Drop-in for the monolithic path of
    :func:`repro.hashing.pairwise.radius_neighbors` when
    ``parallel.shards`` is set; bit-identical output for any shard
    count, worker count, and single-replica loss under R >= 2.
    """
    config = parallel.shards
    if not isinstance(config, ShardConfig):
        raise TypeError(
            f"parallel.shards must be a ShardConfig, got {type(config).__name__}"
        )
    cluster = ShardedIndexCluster(hashes, config=config, parallel=parallel)
    try:
        return cluster.radius_neighbors(hashes, radius)
    finally:
        cluster.close()


def sharded_associate_unique(
    unique: np.ndarray,
    id_array: np.ndarray,
    medoid_array: np.ndarray,
    theta: int,
    *,
    parallel: ParallelConfig,
) -> tuple[np.ndarray, np.ndarray]:
    """Nearest-medoid association through a sharded medoid cluster.

    Returns ``(unique_cluster, unique_distance)`` exactly like
    :func:`repro.annotation.association._associate_unique_shard` over
    the full medoid set: matched entries carry ``id_array[winner]``,
    unmatched stay ``-1``.
    """
    config = parallel.shards
    if not isinstance(config, ShardConfig):
        raise TypeError(
            f"parallel.shards must be a ShardConfig, got {type(config).__name__}"
        )
    cluster = ShardedIndexCluster(
        medoid_array, config=config, parallel=parallel
    )
    try:
        best_position, best_distance = cluster.associate(unique, theta)
    finally:
        cluster.close()
    id_array = np.ascontiguousarray(id_array, dtype=np.int64).reshape(-1)
    unique_cluster = np.full(unique.size, -1, dtype=np.int64)
    matched = best_position >= 0
    unique_cluster[matched] = id_array[best_position[matched]]
    return unique_cluster, best_distance
