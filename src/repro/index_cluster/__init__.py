"""Replicated sharded Hamming index with fault-tolerant scatter-gather.

The paper's corpus is ~160M images — past one node's RAM — so the index
must shard horizontally.  This package partitions a ``uint64`` hash
corpus over N shards by rendezvous (consistent) hashing, keeps R
bit-identical replica copies of every shard, and routes
``radius_neighbors`` / ``associate_hashes`` queries through a
scatter-gather router built on the supervised executor: per-shard
deadlines, replica failover on death or hang, bisection and serial
fallback as last resorts, and a deterministic merge that makes any
shard count and any single-replica loss bit-identical to the
monolithic index.

Layout:

* :mod:`~repro.index_cluster.placement` — :class:`ShardConfig`, the
  rendezvous placement function, and the env-knob parsing
  (``REPRO_INDEX_SHARDS`` / ``REPRO_REPLICATION``).
* :mod:`~repro.index_cluster.kernels` — module-level (picklable)
  per-shard query kernels.
* :mod:`~repro.index_cluster.router` — :class:`ShardedIndexCluster`
  and the batch scatter-gather entry points the hashing/annotation
  layers delegate to.
* :mod:`~repro.index_cluster.monitor` — :class:`ShardedMonitor`, the
  serving-path equivalent of :class:`repro.core.monitor.MemeMonitor`.
"""

from repro.index_cluster.placement import (
    ENV_INDEX_SHARDS,
    ENV_REPLICATION,
    INDEX_CHAOS_SITES,
    ShardConfig,
    mix64,
    rendezvous_shards,
    shard_config_from_env,
)
from repro.index_cluster.kernels import (
    shard_associate_kernel,
    shard_radius_kernel,
)
from repro.index_cluster.router import (
    ShardedIndexCluster,
    sharded_associate_unique,
    sharded_radius_neighbors,
)
from repro.index_cluster.monitor import ShardedMonitor

__all__ = [
    "ENV_INDEX_SHARDS",
    "ENV_REPLICATION",
    "INDEX_CHAOS_SITES",
    "ShardConfig",
    "ShardedIndexCluster",
    "ShardedMonitor",
    "mix64",
    "rendezvous_shards",
    "shard_associate_kernel",
    "shard_config_from_env",
    "shard_radius_kernel",
    "sharded_associate_unique",
    "sharded_radius_neighbors",
]
