"""Consistent-hash placement of hashes onto index shards.

Placement uses rendezvous (highest-random-weight) hashing: every hash
scores each shard with a mixed 64-bit weight and lands on the argmax.
Unlike modulo placement, adding or removing one shard moves only the
hashes whose argmax changed (~1/N of the corpus), and the placement is
a pure function of ``(hash value, shard id, seed)`` — no coordination
state to persist, and identical on every node that computes it.

The weight mix is the splitmix64 finalizer applied to whole ``uint64``
arrays; numpy array arithmetic wraps modulo 2**64 silently, so the hot
path stays vectorised without scalar-overflow warnings.

This module is deliberately import-light (numpy only, never
``repro.utils.parallel``) so :meth:`ParallelConfig.from_env` can import
it lazily without a cycle.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass

import numpy as np

__all__ = [
    "ENV_INDEX_SHARDS",
    "ENV_REPLICATION",
    "INDEX_CHAOS_SITES",
    "ShardConfig",
    "mix64",
    "rendezvous_shards",
    "shard_config_from_env",
]

ENV_INDEX_SHARDS = "REPRO_INDEX_SHARDS"
ENV_REPLICATION = "REPRO_REPLICATION"

# Chaos sites the scatter-gather router consults per shard attempt
# (in place of the generic parallel:shard / parallel:worker pair).
# ``repro.core.faults.INDEX_SITES`` keeps a literal copy of this tuple
# (faults stays import-light; the values must match).
INDEX_CHAOS_SITES = ("index:shard", "index:replica")

DEFAULT_REPLICATION = 2

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)


def mix64(values: np.ndarray) -> np.ndarray:
    """Splitmix64 finalizer over a ``uint64`` array (vectorised).

    A bijective avalanche mix: flipping any input bit flips ~half the
    output bits, which is what makes ``argmax`` over mixed weights an
    unbiased placement.  Works on any shape; always returns a fresh
    array.
    """
    z = np.asarray(values, dtype=np.uint64) + _GOLDEN
    z = (z ^ (z >> np.uint64(30))) * _MIX1
    z = (z ^ (z >> np.uint64(27))) * _MIX2
    return z ^ (z >> np.uint64(31))


def rendezvous_shards(
    hashes: np.ndarray, n_shards: int, seed: int = 0
) -> np.ndarray:
    """Primary shard id for every hash, by highest-random-weight hashing.

    Returns an ``int64`` array of shard ids in ``[0, n_shards)``.  Ties
    (astronomically unlikely after the mix) break to the lowest shard
    id via ``argmax``, keeping placement deterministic.  Equal hash
    values always land on the same shard, so a shard's partition is
    self-contained for duplicate-collapsing queries.
    """
    if n_shards < 1:
        raise ValueError("n_shards must be >= 1")
    hashes = np.ascontiguousarray(hashes, dtype=np.uint64).reshape(-1)
    if n_shards == 1:
        return np.zeros(hashes.size, dtype=np.int64)
    shard_salts = mix64(
        np.arange(1, n_shards + 1, dtype=np.uint64) * _GOLDEN
        + np.uint64(np.int64(seed))
    )
    weights = mix64(hashes[:, None] ^ shard_salts[None, :])
    return np.argmax(weights, axis=1).astype(np.int64)


@dataclass(frozen=True)
class ShardConfig:
    """How the index cluster partitions and replicates a corpus.

    Attributes
    ----------
    n_shards:
        Number of logical shards the corpus is partitioned into;
        ``1`` is a valid degenerate cluster (useful for identity
        testing — still scatter-gathered, same data layout).
    replication:
        Replica copies per logical shard (R).  Every replica holds a
        bit-identical copy of its shard's partition, so the router can
        serve a query from any replica without changing the result;
        R=2 (the default) survives any single-replica loss.
    seed:
        Salt for the rendezvous placement; two clusters with the same
        seed place identically.
    """

    n_shards: int = 1
    replication: int = DEFAULT_REPLICATION
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if self.replication < 1:
            raise ValueError("replication must be >= 1")

    def place(self, hashes: np.ndarray) -> np.ndarray:
        """Primary shard id per hash (see :func:`rendezvous_shards`)."""
        return rendezvous_shards(hashes, self.n_shards, self.seed)


def shard_config_from_env(env=None) -> ShardConfig | None:
    """Shard config from ``REPRO_INDEX_SHARDS`` / ``REPRO_REPLICATION``.

    Mirrors the ``REPRO_WORKERS`` contract: unset (or ``<= 1`` shards)
    keeps the monolithic index (returns ``None``); a *malformed* value
    is an operator error worth surfacing, so it emits a
    :class:`RuntimeWarning` naming the bad value and falls back to the
    default instead of being silently swallowed.
    """
    env = os.environ if env is None else env
    raw_shards = env.get(ENV_INDEX_SHARDS, "")
    n_shards = 1
    if raw_shards:
        try:
            n_shards = int(raw_shards)
        except ValueError:
            warnings.warn(
                f"ignoring malformed {ENV_INDEX_SHARDS}={raw_shards!r} "
                "(not an integer); falling back to the monolithic index",
                RuntimeWarning,
                stacklevel=2,
            )
            n_shards = 1
    replication = DEFAULT_REPLICATION
    raw_replication = env.get(ENV_REPLICATION, "")
    if raw_replication:
        try:
            replication = int(raw_replication)
        except ValueError:
            warnings.warn(
                f"ignoring malformed {ENV_REPLICATION}={raw_replication!r} "
                f"(not an integer); falling back to R={DEFAULT_REPLICATION}",
                RuntimeWarning,
                stacklevel=2,
            )
            replication = DEFAULT_REPLICATION
        else:
            if replication < 1:
                warnings.warn(
                    f"ignoring out-of-range {ENV_REPLICATION}="
                    f"{raw_replication!r} (must be >= 1); falling back "
                    f"to R={DEFAULT_REPLICATION}",
                    RuntimeWarning,
                    stacklevel=2,
                )
                replication = DEFAULT_REPLICATION
    if n_shards <= 1:
        return None
    return ShardConfig(n_shards=n_shards, replication=replication)
