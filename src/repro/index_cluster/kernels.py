"""Per-shard query kernels for the sharded index cluster.

Module-level so process workers can receive pickled shard arguments,
exactly like :func:`repro.hashing.index.mih_neighbors_shard`.  Each
kernel answers queries against ONE shard's partition of the corpus and
returns partial results in *global* coordinates, so the router's merge
is pure set union / minimum — no renumbering.

``shard_radius_kernel`` goes one step further than the monolithic MIH
kernel: instead of gathering candidates per query in a Python loop, it
processes query *blocks* — queries are grouped by chunk byte, and each
(chunk, byte) group verifies ALL its queries against the cached
``(global positions, values)`` candidate arrays in one broadcast
popcount (``query_values[:, None] ^ candidate_values[None, :]``).
Candidate values ride in the cache as contiguous arrays, so the hot
loop never fancy-indexes per candidate pair — only the few surviving
``(query, position)`` pairs are materialised.  The per-query Python
overhead that would otherwise multiply by the shard count (every query
visits every shard) is amortised away, which is what keeps
scatter-gather overhead within the benchmark's 1.3x budget.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.index import MultiIndexHash, _bytes_within
from repro.utils.bitops import popcount
from repro.utils.shm import resolve_array

__all__ = ["shard_associate_kernel", "shard_radius_kernel"]

# Queries verified per vectorised batch; large enough that the byte
# groups inside a block each carry many queries (amortising per-group
# numpy call overhead) without affecting results.
_RADIUS_BLOCK = 32768

# Elements per broadcast popcount matrix (queries x candidates); a byte
# group with more pairs than this verifies its queries in slices.
_PAIR_BUDGET = 1 << 22


def _byte_group_bounds(values: np.ndarray):
    """Stable grouping of a byte array: ``(order, starts, stops, bytes)``.

    ``order[starts[g]:stops[g]]`` are the (ascending) positions holding
    byte value ``bytes[g]``.
    """
    order = np.argsort(values, kind="stable").astype(np.int64)
    sorted_values = values[order]
    bounds = np.flatnonzero(np.diff(sorted_values)) + 1
    starts = np.concatenate(([0], bounds))
    stops = np.concatenate((bounds, [sorted_values.size]))
    return order, starts, stops, sorted_values[starts]


def shard_radius_kernel(
    queries: np.ndarray,
    qstart: int,
    qstop: int,
    shard_values: np.ndarray,
    shard_positions: np.ndarray,
    radius: int,
) -> list[np.ndarray]:
    """Radius matches of ``queries[qstart:qstop]`` within one shard.

    ``shard_values`` is the shard's partition of the corpus and
    ``shard_positions`` its (ascending) global positions.  Returns one
    sorted, duplicate-free ``int64`` array of *global* positions per
    query — exactly the monolithic kernel's row restricted to this
    shard's members, so the union across shards reassembles the
    monolithic row bit for bit (pigeonhole candidate generation only
    depends on the query's and the member's chunk bytes, never on
    which other hashes share the index).

    Supports the supervision ladder's bisection via the query range
    (``range_splitter(1, 2)``); halves concatenate.
    """
    if radius < 0:
        raise ValueError("radius must be non-negative")
    queries = resolve_array(queries, np.uint64)
    shard_values = resolve_array(shard_values, np.uint64)
    shard_positions = resolve_array(shard_positions, np.int64)
    if shard_values.size != shard_positions.size:
        raise ValueError("shard_values and shard_positions must align")
    n_queries = max(0, int(qstop) - int(qstart))
    if n_queries == 0:
        return []
    if shard_values.size == 0:
        return [np.empty(0, dtype=np.int64) for _ in range(n_queries)]
    n_chunks = MultiIndexHash.N_CHUNKS
    per_chunk = radius // n_chunks
    shard_bytes = shard_values.view(np.uint8).reshape(-1, n_chunks)
    query_bytes = queries.view(np.uint8).reshape(-1, n_chunks)
    all_bytes = np.arange(256)
    groups: list[tuple[np.ndarray, np.ndarray, np.ndarray]] = []
    for c in range(n_chunks):
        order = np.argsort(shard_bytes[:, c], kind="stable").astype(np.int64)
        sorted_bytes = shard_bytes[order, c]
        left = np.searchsorted(sorted_bytes, all_bytes, side="left")
        right = np.searchsorted(sorted_bytes, all_bytes, side="right")
        groups.append((order, left, right))
    balls = [_bytes_within(value, per_chunk) for value in range(256)]
    # cache[(chunk, byte)] = (global positions, values) of the shard
    # members whose chunk byte lies in the probe ball — contiguous
    # copies, so the broadcast verification below never gathers per
    # candidate pair (cluster members share chunk bytes, so hit rates
    # are high across both blocks and queries).
    cache: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}
    stride = np.int64(max(queries.size, int(shard_positions[-1]) + 1))
    query_range = np.arange(_RADIUS_BLOCK, dtype=np.int64)
    out: list[np.ndarray] = []
    for block_start in range(int(qstart), int(qstop), _RADIUS_BLOCK):
        block_stop = min(block_start + _RADIUS_BLOCK, int(qstop))
        m = block_stop - block_start
        key_parts: list[np.ndarray] = []
        for c in range(n_chunks):
            block_bytes = query_bytes[block_start:block_stop, c]
            order_q, starts, stops, byte_values = _byte_group_bounds(
                block_bytes
            )
            for g in range(byte_values.size):
                key = (c, int(byte_values[g]))
                entry = cache.get(key)
                if entry is None:
                    order, left, right = groups[c]
                    candidates = np.concatenate(
                        [
                            order[left[probe] : right[probe]]
                            for probe in balls[key[1]]
                        ]
                    )
                    entry = (
                        shard_positions[candidates],
                        shard_values[candidates],
                    )
                    cache[key] = entry
                positions, values = entry
                if positions.size == 0:
                    continue
                rows = order_q[starts[g] : stops[g]]
                query_values = queries[block_start + rows]
                # One broadcast popcount per (chunk, byte) group — all
                # queries sharing this byte against all its candidates.
                # Slicing keeps the (queries x candidates) matrix under
                # _PAIR_BUDGET elements; only survivors fancy-index.
                step = max(1, _PAIR_BUDGET // int(positions.size))
                for lo in range(0, rows.size, step):
                    sub = query_values[lo : lo + step]
                    keep = (
                        popcount(sub[:, None] ^ values[None, :]) <= radius
                    )
                    row_hits, cand_hits = np.nonzero(keep)
                    if row_hits.size:
                        key_parts.append(
                            rows[lo : lo + step][row_hits] * stride
                            + positions[cand_hits]
                        )
        if not key_parts:
            out.extend(np.empty(0, dtype=np.int64) for _ in range(m))
            continue
        # Dedup + per-query sort in one pass: a combined (query, global
        # position) key is unique-sorted, then split back per query.
        keys = np.unique(np.concatenate(key_parts))
        key_queries = keys // stride
        key_positions = keys % stride
        row_starts = np.searchsorted(key_queries, query_range[:m], "left")
        row_stops = np.searchsorted(key_queries, query_range[:m], "right")
        out.extend(
            key_positions[row_starts[i] : row_stops[i]] for i in range(m)
        )
    return out


def shard_associate_kernel(
    unique: np.ndarray,
    medoid_values: np.ndarray,
    medoid_positions: np.ndarray,
    theta: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Nearest medoid within one shard for each unique query hash.

    ``medoid_values`` is the shard's partition of the (globally
    cluster-id-ordered) medoid array and ``medoid_positions`` its
    ascending global positions.  Returns ``(best_position,
    best_distance)`` per query in *global* medoid coordinates, or
    ``(-1, -1)`` when nothing in this shard is within ``theta``.  The
    within-shard winner is the minimum by ``(distance, local
    position)``, which equals ``(distance, global position)`` because
    ``medoid_positions`` ascends — so the router's cross-shard minimum
    reproduces the monolithic tie-break (smallest cluster id) exactly.

    Shard medoid partitions are small (hundreds of entries), so rather
    than paying a per-query ``MultiIndexHash.query`` Python loop — a
    fixed cost the shard count would multiply — the whole block is one
    broadcast popcount against the shard's medoids.  MIH radius queries
    are exact (pigeonhole), so the dense minimum is the same winner.
    ``np.argmin`` returns the *first* minimum, i.e. the smallest local
    position among tied distances: the required tie-break for free.

    Supports bisection over the query array (``array_splitter(0)``).
    """
    unique = resolve_array(unique, np.uint64)
    medoid_values = resolve_array(medoid_values, np.uint64)
    medoid_positions = resolve_array(medoid_positions, np.int64)
    if medoid_values.size != medoid_positions.size:
        raise ValueError("medoid_values and medoid_positions must align")
    best_position = np.full(unique.size, -1, dtype=np.int64)
    best_distance = np.full(unique.size, -1, dtype=np.int64)
    if unique.size == 0 or medoid_values.size == 0:
        return best_position, best_distance
    step = max(1, _PAIR_BUDGET // int(medoid_values.size))
    for lo in range(0, unique.size, step):
        block = unique[lo : lo + step]
        distances = popcount(block[:, None] ^ medoid_values[None, :])
        distances[distances > theta] = 65  # > any 64-bit distance
        best_local = np.argmin(distances, axis=1)
        block_rows = np.arange(block.size)
        winners = distances[block_rows, best_local]
        matched = np.flatnonzero(winners <= theta)
        best_position[lo + matched] = medoid_positions[best_local[matched]]
        best_distance[lo + matched] = winners[matched]
    return best_position, best_distance
