"""Sharded serving-path monitor: MemeMonitor over a replicated cluster.

:class:`ShardedMonitor` is a drop-in for
:class:`repro.core.monitor.MemeMonitor` whose medoid index is
partitioned over N shards × R replicas.  Per-request scatter is an
in-process loop over the logical shards (a per-hash lookup is
sub-millisecond; pool fan-out would cost more than it saves), with
replica failover per shard: a replica whose lookup raises — including
chaos injected at the ``index:shard`` / ``index:replica`` sites — is
skipped in favour of its twin, and the twin becomes the serving replica
for subsequent requests (sticky failover, so a dead replica is not
re-tried on every request).  A shard only fails a request when *every*
replica fails, because returning a partial verdict would silently
change results — the same bit-identity posture as the batch router.

The cross-shard winner is the minimum by ``(distance, global medoid
position)``, the monolithic monitor's exact tie-break, so a
:class:`ShardedMonitor` verdict equals a
:class:`~repro.core.monitor.MemeMonitor` verdict bit for bit for every
hash, shard count, and surviving-replica combination.
"""

from __future__ import annotations

import time

import numpy as np

from repro.annotation.matcher import DEFAULT_THETA
from repro.core.monitor import (
    MemeMonitor,
    MonitorVerdict,
    _validated_hash_array,
)
from repro.core.results import PipelineResult
from repro.hashing.index import MultiIndexHash
from repro.index_cluster.placement import INDEX_CHAOS_SITES, ShardConfig

__all__ = ["ShardedMonitor"]


class ShardedMonitor(MemeMonitor):
    """Classify hashes against medoids sharded with replica failover.

    Parameters
    ----------
    result:
        A completed pipeline run (same contract as
        :class:`~repro.core.monitor.MemeMonitor`).
    theta:
        Matching threshold.
    shards:
        :class:`~repro.index_cluster.placement.ShardConfig` giving the
        shard count and replication factor.
    chaos:
        Optional chaos hook consulted once per replica attempt at the
        ``index:shard`` / ``index:replica`` sites; ``hang`` directives
        sleep in-process, ``kill`` degrades to a raised error (there is
        no worker process to kill on the serving path).
    on_failover / on_error:
        Optional callbacks fired when a replica attempt fails
        (``on_error``) and when a lookup is served by a non-primary
        replica after such a failure (``on_failover``); the service
        wires these to its stats counters.
    """

    def __init__(
        self,
        result: PipelineResult,
        *,
        theta: int = DEFAULT_THETA,
        shards: ShardConfig,
        chaos=None,
        on_failover=None,
        on_error=None,
    ) -> None:
        super().__init__(result, theta=theta)
        if not isinstance(shards, ShardConfig):
            raise TypeError(
                f"shards must be a ShardConfig, got {type(shards).__name__}"
            )
        self.shards = shards
        self.chaos = chaos
        self._on_failover = on_failover
        self._on_error = on_error
        medoids = np.array(
            [annotation.medoid_hash for annotation in self._annotations],
            dtype=np.uint64,
        )
        placement = shards.place(medoids)
        # _replicas[s][r] = (MultiIndexHash over the shard's medoids,
        # ascending global positions).  Each replica indexes its own
        # array copy, mirroring the batch router's layout.
        self._replicas: list[list[tuple[MultiIndexHash, np.ndarray]]] = []
        self._serving = [0] * shards.n_shards
        self._failovers = [0] * shards.n_shards
        self._errors = [0] * shards.n_shards
        for s in range(shards.n_shards):
            positions = np.flatnonzero(placement == s).astype(np.int64)
            shard_medoids = medoids[positions]
            self._replicas.append(
                [
                    (MultiIndexHash(shard_medoids.copy()), positions.copy())
                    for _ in range(shards.replication)
                ]
            )

    # -- chaos & failover ----------------------------------------------

    def _consult_chaos(self) -> None:
        """Fire the index chaos sites; degrade directives in-process."""
        if self.chaos is None:
            return
        directive = None
        for site in INDEX_CHAOS_SITES:
            directive = self.chaos(site)
            if directive is not None:
                break
        if directive is None:
            return
        if directive.action == "kill":
            raise RuntimeError("simulated replica death")
        time.sleep(directive.delay_s)

    def _query_shard(self, shard: int, value: int) -> list[tuple[int, int]]:
        """One shard's ``(global position, distance)`` pairs, with failover."""
        replication = self.shards.replication
        serving = self._serving[shard]
        last_error: BaseException | None = None
        for offset in range(replication):
            replica = (serving + offset) % replication
            try:
                self._consult_chaos()
                index, positions = self._replicas[shard][replica]
                pairs = index.query(value, self.theta)
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as error:
                last_error = error
                self._errors[shard] += 1
                if self._on_error is not None:
                    self._on_error(shard, replica, error)
                continue
            if offset:
                # Sticky failover: the replica that answered keeps
                # serving, so a dead twin is not re-tried per request.
                self._serving[shard] = replica
                self._failovers[shard] += 1
                if self._on_failover is not None:
                    self._on_failover(shard, replica)
            return [
                (int(positions[local]), int(distance))
                for local, distance in pairs
            ]
        raise RuntimeError(
            f"index shard {shard}: all {replication} replicas failed"
        ) from last_error

    # -- MemeMonitor interface -----------------------------------------

    def classify_hash(self, value: np.uint64 | int) -> MonitorVerdict:
        """Scatter one hash across all shards; identical verdict to the
        monolithic :meth:`MemeMonitor.classify_hash`."""
        try:
            value = int(value)
        except (TypeError, ValueError):
            raise TypeError(
                f"pHash must be an integer-like scalar, got {type(value).__name__}"
            )
        if not 0 <= value < 2**64:
            raise ValueError(
                f"pHash {value} outside the unsigned 64-bit range [0, 2**64)"
            )
        if not self._keys:
            return MonitorVerdict.no_match()
        pairs: list[tuple[int, int]] = []
        for shard in range(self.shards.n_shards):
            pairs.extend(self._query_shard(shard, value))
        if not pairs:
            return MonitorVerdict.no_match()
        position, distance = min(pairs, key=lambda p: (p[1], p[0]))
        annotation = self._annotations[position]
        return MonitorVerdict(
            matched=True,
            cluster=self._keys[position],
            entry=annotation.representative,
            distance=int(distance),
            is_racist=annotation.is_racist,
            is_politics=annotation.is_politics,
        )

    def classify_batch(self, hashes: np.ndarray) -> list[MonitorVerdict]:
        """Classify many pHashes, one scatter per unique element.

        Deliberately *not* the monolithic monitor's dense batch kernel:
        each element must still take the per-request scatter/failover
        ladder so the ``index:shard``/``index:replica`` chaos sites and
        sticky-failover bookkeeping behave identically whether requests
        arrive singly or coalesced.  Verdicts are bit-identical either
        way.
        """
        return self._classify_batch_loop(_validated_hash_array(hashes))

    # -- operational surface -------------------------------------------

    def validate_shards(self) -> int:
        """Validate the cluster's layout; returns the shard count.

        Checks that every shard's replicas agree bit-for-bit and that
        the shard partitions tile the medoid set exactly — the
        per-shard half of the service's validate-then-swap reload.
        Raises :class:`ValueError` on any inconsistency.
        """
        seen = []
        for s, replicas in enumerate(self._replicas):
            reference, ref_positions = replicas[0]
            for r, (index, positions) in enumerate(replicas[1:], start=1):
                if not np.array_equal(index.hashes, reference.hashes):
                    raise ValueError(
                        f"index shard {s}: replica {r} diverges from replica 0"
                    )
                if not np.array_equal(positions, ref_positions):
                    raise ValueError(
                        f"index shard {s}: replica {r} placement diverges"
                    )
            seen.append(ref_positions)
        covered = (
            np.sort(np.concatenate(seen)) if seen else np.empty(0, np.int64)
        )
        if not np.array_equal(
            covered, np.arange(len(self._keys), dtype=np.int64)
        ):
            raise ValueError(
                "shard partitions do not tile the medoid set exactly"
            )
        return len(self._replicas)

    def health_snapshot(self) -> list[dict]:
        """Per-shard health for ``ServiceStats`` / ``health()``."""
        return [
            {
                "shard": s,
                "size": int(self._replicas[s][0][1].size),
                "replication": self.shards.replication,
                "serving_replica": self._serving[s],
                "failovers": self._failovers[s],
                "errors": self._errors[s],
            }
            for s in range(self.shards.n_shards)
        ]
