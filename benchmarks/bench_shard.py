#!/usr/bin/env python
"""Benchmark the replicated sharded index against the monolithic index.

Standalone (not pytest-benchmark): run as

    PYTHONPATH=src python benchmarks/bench_shard.py [--shards 4]
        [--workers 2] [--smoke] [--output BENCH_shard.json]

Two questions, each answered with a verified-identical comparison:

* **Scatter-gather overhead** — ``radius_neighbors`` and
  ``associate_hashes`` routed through N rendezvous-placed shards × R=2
  replicas versus the monolithic single-index path, on the same
  clustered 50k-hash workload ``bench_parallel.py`` uses.  The sharded
  path re-does per-shard candidate grouping, so some overhead is
  structural; the acceptance bar is ≤ 1.3x the monolith.
* **Recovery under replica loss** — the same scatter with one replica
  of one shard killed mid-query (``index:shard`` chaos, process
  backend: a real worker death).  With R=2 the router fails over to
  the twin; the record pins **zero failed queries** and bit-identical
  results, and reports the recovery latency (chaotic minus clean
  wall-clock).

Every record verifies the sharded output element-for-element against
the monolith before reporting a ratio — a fast wrong answer scores
zero.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

import numpy as np

from repro.annotation.association import associate_hashes
from repro.core.faults import Fault, FaultInjector
from repro.hashing.pairwise import radius_neighbors
from repro.index_cluster import ShardConfig
from repro.utils.parallel import ParallelConfig, effective_workers


def clustered_hashes(n_bases: int, members: int, seed: int = 7) -> np.ndarray:
    """Clustered pHash multiset: bases with 0-3 random bit flips each."""
    rng = np.random.default_rng(seed)
    bases = rng.integers(0, 2**64, size=n_bases, dtype=np.uint64)
    out = np.repeat(bases, members)
    flips = rng.integers(0, 4, size=out.size)
    for bit in range(3):
        mask = flips > bit
        positions = rng.integers(0, 64, size=out.size, dtype=np.uint64)
        out[mask] ^= np.uint64(1) << positions[mask]
    return out


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _rows_identical(a: list[np.ndarray], b: list[np.ndarray]) -> bool:
    return len(a) == len(b) and all(
        np.array_equal(x, y) for x, y in zip(a, b)
    )


def bench_radius_overhead(
    n_hashes: int, shards: ShardConfig, parallel: ParallelConfig
) -> dict:
    hashes = clustered_hashes(max(1, n_hashes // 10), 10)
    monolith, monolith_s = _timed(
        lambda: radius_neighbors(hashes, 8, method="mih")
    )
    sharded_parallel = ParallelConfig(
        workers=parallel.workers, backend=parallel.backend, shards=shards
    )
    sharded, sharded_s = _timed(
        lambda: radius_neighbors(hashes, 8, parallel=sharded_parallel)
    )
    return {
        "name": "radius_neighbors_scatter_gather",
        "n_items": int(hashes.size),
        "radius": 8,
        "n_shards": shards.n_shards,
        "replication": shards.replication,
        "monolith_s": monolith_s,
        "sharded_s": sharded_s,
        "overhead_x": sharded_s / monolith_s if monolith_s else float("inf"),
        "identical": _rows_identical(monolith, sharded),
    }


def bench_associate_overhead(
    n_hashes: int, n_medoids: int, shards: ShardConfig, parallel: ParallelConfig
) -> dict:
    rng = np.random.default_rng(13)
    medoid_values = rng.integers(0, 2**64, size=n_medoids, dtype=np.uint64)
    medoids = {int(i): int(v) for i, v in enumerate(medoid_values)}
    near = np.repeat(medoid_values, 3) ^ np.uint64(1)
    hashes = np.concatenate(
        [near, clustered_hashes(max(1, (n_hashes - near.size) // 10), 10, seed=17)]
    )
    monolith, monolith_s = _timed(
        lambda: associate_hashes(hashes, medoids, theta=8)
    )
    sharded_parallel = ParallelConfig(
        workers=parallel.workers, backend=parallel.backend, shards=shards
    )
    sharded, sharded_s = _timed(
        lambda: associate_hashes(
            hashes, medoids, theta=8, parallel=sharded_parallel
        )
    )
    identical = bool(
        np.array_equal(monolith.cluster_ids, sharded.cluster_ids)
        and np.array_equal(monolith.distances, sharded.distances)
    )
    return {
        "name": "associate_hashes_scatter_gather",
        "n_items": int(hashes.size),
        "n_medoids": n_medoids,
        "n_shards": shards.n_shards,
        "replication": shards.replication,
        "monolith_s": monolith_s,
        "sharded_s": sharded_s,
        "overhead_x": sharded_s / monolith_s if monolith_s else float("inf"),
        "identical": identical,
    }


def bench_replica_kill_recovery(
    n_hashes: int, shards: ShardConfig, workers: int
) -> dict:
    """Kill one replica of one shard mid-query; measure the rescue.

    Process backend so the ``index:shard`` kill is a real worker death
    (``os._exit`` mid-task, observed as ``BrokenProcessPool``), not a
    polite exception.  ``failed_queries`` counts query rows the chaotic
    run lost or got wrong versus the monolith — the acceptance bar is
    exactly zero under R=2.
    """
    hashes = clustered_hashes(max(1, n_hashes // 10), 10, seed=23)
    monolith = radius_neighbors(hashes, 8, method="mih")
    process = ParallelConfig(workers=workers, backend="process", shards=shards)

    clean, clean_s = _timed(
        lambda: radius_neighbors(hashes, 8, parallel=process)
    )
    faults = FaultInjector([Fault("index:shard", action="kill", times=1)])
    chaotic_parallel = ParallelConfig(
        workers=workers,
        backend="process",
        shards=shards,
        chaos=faults.parallel_directive,
    )
    chaotic, chaotic_s = _timed(
        lambda: radius_neighbors(hashes, 8, parallel=chaotic_parallel)
    )
    failed_queries = sum(
        1
        for expected, got in zip(monolith, chaotic)
        if not np.array_equal(expected, got)
    ) + abs(len(monolith) - len(chaotic))
    return {
        "name": "replica_kill_recovery",
        "n_items": int(hashes.size),
        "n_shards": shards.n_shards,
        "replication": shards.replication,
        "fault": "index:shard@1@kill",
        "fault_fired": "index:shard" in faults.fired_sites(),
        "clean_s": clean_s,
        "chaotic_s": chaotic_s,
        "recovery_latency_s": max(0.0, chaotic_s - clean_s),
        "failed_queries": int(failed_queries),
        "identical": _rows_identical(monolith, chaotic),
        "clean_identical": _rows_identical(monolith, clean),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--replication", type=int, default=2)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--backend", choices=("thread", "process"), default="thread",
        help="backend for the overhead records (the recovery record "
        "always uses process workers so the kill is a real death)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workloads: verify identity and JSON shape, skip the "
        "overhead assertion (for CI)",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(
            os.path.dirname(__file__), "..", "BENCH_shard.json"
        ),
    )
    args = parser.parse_args(argv)
    shards = ShardConfig(n_shards=args.shards, replication=args.replication)
    parallel = ParallelConfig(workers=args.workers, backend=args.backend)

    if args.smoke:
        sizes = dict(neighbors=2_000, assoc=5_000, medoids=50, chaos=2_000)
    else:
        sizes = dict(neighbors=50_000, assoc=50_000, medoids=500, chaos=20_000)

    print(
        f"shards={args.shards} R={args.replication} workers={args.workers} "
        f"(effective={effective_workers(args.workers)}) "
        f"backend={args.backend} cpus={os.cpu_count()} smoke={args.smoke}",
        flush=True,
    )
    records = []
    for record in (
        bench_radius_overhead(sizes["neighbors"], shards, parallel),
        bench_associate_overhead(
            sizes["assoc"], sizes["medoids"], shards, parallel
        ),
        bench_replica_kill_recovery(sizes["chaos"], shards, args.workers),
    ):
        records.append(record)
        detail = (
            f"  [recovery={record['recovery_latency_s']:.3f}s, "
            f"failed_queries={record['failed_queries']}]"
            if "recovery_latency_s" in record
            else f"  overhead={record['overhead_x']:.2f}x"
        )
        base = record.get("monolith_s", record.get("clean_s", 0.0))
        timed = record.get("sharded_s", record.get("chaotic_s", 0.0))
        print(
            f"  {record['name']:34s} n={record['n_items']:>7,}  "
            f"base={base:8.3f}s  sharded={timed:8.3f}s  "
            f"identical={record['identical']}{detail}",
            flush=True,
        )

    payload = {
        "benchmark": "replicated sharded index scatter-gather (ISSUE 6)",
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "config": {
            "n_shards": args.shards,
            "replication": args.replication,
            "workers": args.workers,
            "effective_workers": effective_workers(args.workers),
            "backend": args.backend,
            "smoke": args.smoke,
        },
        "records": records,
    }
    output = os.path.abspath(args.output)
    with open(output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"\nwrote {output}")

    for record in records:
        if not record["identical"]:
            print(
                f"FAIL: {record['name']} diverged from the monolith",
                file=sys.stderr,
            )
            return 1
    chaos = records[-1]
    if not chaos["fault_fired"]:
        print("FAIL: the replica-kill fault never fired", file=sys.stderr)
        return 1
    if chaos["failed_queries"] != 0:
        print(
            f"FAIL: {chaos['failed_queries']} queries failed under "
            "single-replica loss (must be 0 with R=2)",
            file=sys.stderr,
        )
        return 1
    if not args.smoke:
        for record in records[:2]:
            if record["overhead_x"] > 1.3:
                print(
                    f"FAIL: {record['name']} scatter-gather overhead "
                    f"{record['overhead_x']:.2f}x > 1.3x vs the monolith",
                    file=sys.stderr,
                )
                return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
