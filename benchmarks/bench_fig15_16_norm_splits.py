"""Figs. 15/16 — normalised (per-source-event) influence by group.

Paper: even split by group, the normalised view inverts the raw story —
/pol/ remains the least efficient and The_Donald the most efficient, for
both racist and political memes (Total-Ext columns).
"""

from benchmarks.conftest import once
from repro.communities.models import COMMUNITIES, DISPLAY_NAMES
from repro.utils.tables import format_table


def norm_table(study, group_a: str, group_b: str, title: str) -> str:
    a = study.group(group_a)
    b = study.group(group_b)
    na = a.normalized_by_source()
    nb = b.normalized_by_source()
    ta = a.total_external_normalized()
    tb = b.total_external_normalized()
    rows = []
    for s in range(len(COMMUNITIES)):
        cells = [
            f"{na[s, d]:.1f}/{nb[s, d]:.1f}" for d in range(len(COMMUNITIES))
        ]
        rows.append(
            [DISPLAY_NAMES[COMMUNITIES[s]]] + cells + [f"{ta[s]:.1f}/{tb[s]:.1f}"]
        )
    headers = (
        ["Source \\ Dest"] + [DISPLAY_NAMES[c] for c in COMMUNITIES] + ["Total Ext"]
    )
    return format_table(rows, headers=headers, title=title)


def test_fig15_16_normalized_group_influence(
    benchmark, bench_influence, write_output
):
    text = once(
        benchmark,
        lambda: "\n\n".join(
            [
                norm_table(
                    bench_influence, "racist", "non_racist",
                    "Fig. 15: normalised influence, racist/non-racist (R/NR)",
                ),
                norm_table(
                    bench_influence, "politics", "non_politics",
                    "Fig. 16: normalised influence, political/non-political (P/NP)",
                ),
            ]
        ),
    )
    write_output("fig15_16_norm_splits", text)

    index = {name: k for k, name in enumerate(COMMUNITIES)}
    politics = bench_influence.group("politics")
    politics_ext = politics.total_external_normalized()
    # The_Donald stays the most efficient spreader of political memes
    # among communities with a substantive fitted event count (tiny
    # communities' normalised estimates are high-variance).
    substantive = [
        k for k in range(len(COMMUNITIES)) if politics.event_counts[k] >= 50
    ]
    td = index["the_donald"]
    assert td in substantive
    assert politics_ext[td] == max(politics_ext[k] for k in substantive)
    # /pol/ stays inefficient for political memes relative to The_Donald.
    assert politics_ext[index["pol"]] < politics_ext[td]
