"""Fig. 3 — the perceptual-similarity decay for tau in {1, 25, 64}.

The figure plots r_perceptual over all Hamming scores d in [0, 64] for
three smoothers.  The quoted anchor points: tau=1 drops to ~0.4 at d=1;
tau=64 decays almost linearly (0.98 at d=1); tau=25 stays high to d=8.
"""

import numpy as np

from benchmarks.conftest import once
from repro.core.metric import perceptual_similarity
from repro.utils.tables import format_table


def test_fig3_perceptual_decay(benchmark, write_output):
    d = np.arange(0, 65)
    curves = once(
        benchmark,
        lambda: {tau: perceptual_similarity(d, tau=tau) for tau in (1.0, 25.0, 64.0)},
    )
    sample_points = [0, 1, 4, 8, 16, 32, 64]
    rows = [
        [point] + [f"{curves[tau][point]:.3f}" for tau in (1.0, 25.0, 64.0)]
        for point in sample_points
    ]
    text = format_table(
        rows,
        headers=["d", "tau=1", "tau=25", "tau=64"],
        title="Fig. 3: r_perceptual(d) for tau in {1, 25, 64}",
    )
    write_output("fig3_decay", text)

    assert curves[1.0][0] == 1.0
    assert abs(curves[1.0][1] - 0.4) < 0.04
    assert abs(curves[64.0][1] - 0.98) < 0.01
    assert curves[25.0][8] > 0.7
    assert curves[25.0][32] < 0.3
    for tau in curves:
        assert np.all(np.diff(curves[tau]) < 0)
