#!/usr/bin/env python
"""Benchmark durable streaming ingestion: throughput, recovery, pauses.

Standalone (not pytest-benchmark): run as

    PYTHONPATH=src python benchmarks/bench_stream.py [--smoke]
        [--output BENCH_stream.json]

Four measurements over one synthetic corpus streamed through
:class:`repro.stream.StreamIngester` with fsynced WAL appends and
drift-triggered compaction:

* **sustained ingest** — events/second over the whole stream, WAL and
  compactions included, extrapolated to posts/day.  The paper's corpus
  is ~160M posts over ~2.5 years (~175k/day); the headline assertion
  is that the ingester sustains >= 1M posts/day.
* **bounded memory** — the admission buffer's peak depth must respect
  ``max_buffer``, and compaction must keep the WAL bounded (segments
  behind the checkpoint are reclaimed); peak RSS is recorded.
* **recovery** — the WAL directory is reopened as a crashed session
  (checkpoint load + WAL-suffix replay); must come back in < 2s.
* **compaction pause** — one forced full compaction (re-cluster +
  annotate + associate + Hawkes refit + checkpoint), the worst-case
  stall an operator schedules around.

The recovered, compacted state is asserted bit-identical to a cold
batch run over the same events — the whole point of the protocol.

A fifth measurement, **group_commit**, re-streams the same corpus with
:attr:`~repro.stream.StreamConfig.group_commit` on and bursty arrivals
(``max_buffer``-sized reads, so each drain appends several WAL records
as one commit group with a single fsync).  Its state must also be
bit-identical to the batch run, and sustained fsynced ingest must meet
the throughput gate (>= 5,000 events/s on the full corpus).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import resource
import shutil
import sys
import tempfile
import time

import numpy as np

from repro.communities import SyntheticWorld, WorldConfig
from repro.core import run_pipeline
from repro.stream import StreamConfig, StreamIngester, state_equals


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def _peak_rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny corpus: verify bit-identity, recovery, and JSON "
        "shape on CI timescales",
    )
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument(
        "--output",
        default=os.path.join(
            os.path.dirname(__file__), "..", "BENCH_stream.json"
        ),
    )
    args = parser.parse_args(argv)
    world_config = WorldConfig(
        seed=args.seed,
        events_unit=10.0 if args.smoke else 75.0,
        noise_scale=0.8,
    )
    max_buffer = 1024
    batch_size = 128

    work_dir = tempfile.mkdtemp(prefix="bench-stream-")
    wal_dir = os.path.join(work_dir, "wal")
    try:
        # World generation stays outside the timers: the benchmark
        # measures ingestion, not synthetic-corpus synthesis.
        world = SyntheticWorld.generate(world_config)
        n_events = len(world.posts)
        print(f"corpus: seed={world_config.seed} "
              f"events_unit={world_config.events_unit} "
              f"posts={n_events:,}", flush=True)
        rss_before = _peak_rss_mb()

        stream = StreamConfig(
            wal_dir=wal_dir,
            max_buffer=max_buffer,
            batch_size=batch_size,
            fsync=True,
        )
        source = world.event_source()
        ingester = StreamIngester(world, stream=stream)

        def sustained():
            while ingester.n_events < source.n_events:
                ingester.ingest(source.read(ingester.n_events, batch_size))

        _, ingest_s = _timed(sustained)
        events_per_s = n_events / ingest_s if ingest_s else float("inf")
        posts_per_day = events_per_s * 86_400.0
        buffer_peak = ingester.buffer.peak_depth
        wal_truncations = ingester.report.wal_segments_truncated
        mid_compactions = ingester.report.compactions
        print(f"  sustained ingest {ingest_s:8.3f}s  "
              f"{events_per_s:10,.0f} events/s  "
              f"({posts_per_day:,.0f} posts/day, "
              f"{mid_compactions} compactions inline)", flush=True)

        # Crash the session mid-flight: the events since the last
        # inline compaction are only in the WAL, so recovery has a real
        # suffix to replay — not just a checkpoint read.
        applied = ingester.n_events
        ingester.wal.close()
        os.remove(os.path.join(wal_dir, ".lock"))

        recovered, recovery_s = _timed(
            lambda: StreamIngester(world, stream=stream)
        )
        print(f"  recovery         {recovery_s:8.3f}s  "
              f"(replayed {recovered.report.replayed_events} events)",
              flush=True)
        assert recovered.n_events == applied

        _, compact_s = _timed(lambda: recovered.compact(force=True))
        print(f"  compaction pause {compact_s:8.3f}s", flush=True)
        streamed = recovered.result()
        recovered.close()
        batch, batch_s = _timed(lambda: run_pipeline(world))
        bit_identical = state_equals(streamed, batch)
        rss_after = _peak_rss_mb()
        print(f"  batch reference  {batch_s:8.3f}s  "
              f"bit-identical={bit_identical}", flush=True)
        print(f"  peak RSS {rss_after:.0f} MB (was {rss_before:.0f} MB "
              f"before ingest)  buffer peak {buffer_peak}/{max_buffer}",
              flush=True)

        # Group commit: same corpus, bursty arrivals (whole-buffer
        # reads), every drain fsynced once for its whole record group.
        group_wal = os.path.join(work_dir, "wal-group")
        group_config = StreamConfig(
            wal_dir=group_wal,
            max_buffer=max_buffer,
            batch_size=batch_size,
            fsync=True,
            group_commit=True,
        )
        group_source = world.event_source()
        group = StreamIngester(world, stream=group_config)

        def sustained_grouped():
            while group.n_events < group_source.n_events:
                group.ingest(
                    group_source.read(group.n_events, max_buffer)
                )

        _, group_s = _timed(sustained_grouped)
        group_events_per_s = n_events / group_s if group_s else float("inf")
        group_records = group.report.wal_records
        group.compact(force=True)
        group_identical = state_equals(group.result(), batch)
        group.close()
        print(f"  group commit     {group_s:8.3f}s  "
              f"{group_events_per_s:10,.0f} events/s  "
              f"({group_records} WAL records, "
              f"bit-identical={group_identical})", flush=True)

        # Smoke corpora are too small to amortise the fixed pipeline
        # costs, so the hard throughput gate applies to the full run.
        group_gate = 500.0 if args.smoke else 5_000.0
        failures = []
        if not bit_identical:
            failures.append("streamed state diverged from the batch run")
        if not group_identical:
            failures.append(
                "group-commit state diverged from the batch run"
            )
        if group_events_per_s < group_gate:
            failures.append(
                f"group-commit ingest {group_events_per_s:,.0f} events/s "
                f"< {group_gate:,.0f} gate"
            )
        if buffer_peak > max_buffer:
            failures.append(
                f"buffer peak {buffer_peak} exceeded max_buffer {max_buffer}"
            )
        if recovery_s >= 2.0:
            failures.append(f"recovery took {recovery_s:.3f}s (>= 2s)")
        if posts_per_day < 1_000_000:
            failures.append(
                f"throughput {posts_per_day:,.0f} posts/day < 1M"
            )

        payload = {
            "benchmark": "durable streaming ingestion (ISSUE 9)",
            "host": {
                "cpu_count": os.cpu_count(),
                "platform": platform.platform(),
                "python": platform.python_version(),
                "numpy": np.__version__,
            },
            "config": {
                "seed": world_config.seed,
                "events_unit": world_config.events_unit,
                "smoke": args.smoke,
                "n_events": n_events,
                "max_buffer": max_buffer,
                "batch_size": batch_size,
                "compact_threshold": stream.compact_threshold,
                "fsync": True,
            },
            "records": [
                {
                    "name": "sustained_ingest",
                    "seconds": ingest_s,
                    "events_per_second": events_per_s,
                    "posts_per_day": posts_per_day,
                    "inline_compactions": mid_compactions,
                    "buffer_peak": buffer_peak,
                    "buffer_bound": max_buffer,
                    "wal_segments_truncated": wal_truncations,
                },
                {
                    "name": "compaction_pause",
                    "seconds": compact_s,
                },
                {
                    "name": "recovery_after_kill",
                    "seconds": recovery_s,
                    "replayed_events": recovered.report.replayed_events,
                    "budget_seconds": 2.0,
                },
                {
                    "name": "batch_reference",
                    "seconds": batch_s,
                    "bit_identical_to_stream": bit_identical,
                },
                {
                    "name": "group_commit",
                    "seconds": group_s,
                    "events_per_second": group_events_per_s,
                    "posts_per_day": group_events_per_s * 86_400.0,
                    "wal_records": group_records,
                    "bit_identical_to_batch": group_identical,
                    "events_per_second_gate": group_gate,
                },
            ],
            "rss_mb": {"before_ingest": rss_before, "peak": rss_after},
            "failures": failures,
        }
        with open(args.output, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print(f"wrote {os.path.abspath(args.output)}", flush=True)
        if failures:
            for failure in failures:
                print(f"FAILED: {failure}", file=sys.stderr)
            return 1
        return 0
    finally:
        shutil.rmtree(work_dir, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
