"""Fig. 4 — Know Your Meme characterisation.

Paper: (a) memes are the majority category (57%), then subcultures;
(b) images-per-entry is heavy-tailed (median 9, mean 45, up to 8K);
(c) the origin mix is led by unknown (28%), YouTube (21%), 4chan (12%),
Twitter (11%).
"""

import numpy as np

from benchmarks.conftest import once
from repro.utils.tables import format_table


def test_fig4_kym_characterisation(benchmark, bench_world, write_output):
    site = bench_world.kym_site
    payload = once(
        benchmark,
        lambda: (site.category_counts(), site.images_per_entry(), site.origin_counts()),
    )
    categories, images, origins = payload

    total = len(site)
    cat_rows = [
        [category, count, f"{100 * count / total:.0f}%"]
        for category, count in sorted(categories.items(), key=lambda i: -i[1])
    ]
    origin_rows = [
        [origin, count, f"{100 * count / total:.0f}%"]
        for origin, count in sorted(origins.items(), key=lambda i: -i[1])
    ]
    text = "\n\n".join(
        [
            format_table(cat_rows, headers=["Category", "Entries", "%"],
                         title="Fig. 4a: KYM entries per category"),
            format_table(
                [
                    ["min", int(images.min())],
                    ["median", float(np.median(images))],
                    ["mean", float(images.mean())],
                    ["max", int(images.max())],
                ],
                title="Fig. 4b: images per entry",
            ),
            format_table(origin_rows, headers=["Origin", "Entries", "%"],
                         title="Fig. 4c: KYM entries per origin"),
        ]
    )
    write_output("fig4_kym", text)

    # (a) memes dominate.
    assert categories["memes"] == max(categories.values())
    # (b) heavy tail: mean > median.
    assert images.mean() > np.median(images)
    # (c) unknown and YouTube lead the origin mix (with ~45 entries the
    # exact winner is sampling noise; both must sit in the top three).
    ranked = sorted(origins.items(), key=lambda item: -item[1])
    top3 = {name for name, _ in ranked[:3]}
    assert "unknown" in top3
    assert "youtube" in top3
