"""Ablation — Hamming radius-search strategy.

The paper's Step 2 ran all-pairs comparisons on two GPUs.  At laptop
scale the choice is between brute-force matrices, a BK-tree, and
multi-index hashing; this bench times all three on the bench world's
/pol/ hashes and checks they agree, justifying MIH as the default for
large collections.
"""

import time

import numpy as np

from benchmarks.conftest import once
from repro.hashing.index import BKTree, MultiIndexHash
from repro.hashing.pairwise import radius_neighbors
from repro.utils.tables import format_table


def test_ablation_radius_search(benchmark, bench_world, write_output):
    hashes = bench_world.unique_hashes_of("pol")
    queries = hashes[:: max(len(hashes) // 300, 1)][:300]
    radius = 8

    def run():
        timings = {}
        start = time.perf_counter()
        mih = MultiIndexHash(hashes)
        timings["mih build"] = time.perf_counter() - start
        start = time.perf_counter()
        mih_results = [
            frozenset(i for i, _ in mih.query(int(q), radius)) for q in queries
        ]
        timings["mih query"] = time.perf_counter() - start

        start = time.perf_counter()
        tree = BKTree(int(h) for h in hashes)
        timings["bk build"] = time.perf_counter() - start
        start = time.perf_counter()
        bk_results = [
            frozenset(i for i, _ in tree.query(int(q), radius)) for q in queries
        ]
        timings["bk query"] = time.perf_counter() - start

        start = time.perf_counter()
        neighbors = radius_neighbors(hashes, radius, method="brute")
        timings["brute all-pairs"] = time.perf_counter() - start
        return timings, mih_results, bk_results, neighbors

    timings, mih_results, bk_results, neighbors = once(benchmark, run)

    # All strategies agree exactly.
    assert mih_results == bk_results
    query_positions = [int(np.flatnonzero(hashes == q)[0]) for q in queries]
    for q_index, position in enumerate(query_positions):
        assert frozenset(neighbors[position].tolist()) == mih_results[q_index]

    per_query = {
        "MIH": timings["mih query"] / len(queries),
        "BK-tree": timings["bk query"] / len(queries),
    }
    text = format_table(
        [
            ["collection size", len(hashes), ""],
            ["queries timed", len(queries), ""],
            ["MIH build (s)", f"{timings['mih build']:.3f}", ""],
            ["MIH per query (ms)", f"{1000 * per_query['MIH']:.3f}", ""],
            ["BK build (s)", f"{timings['bk build']:.3f}", ""],
            ["BK per query (ms)", f"{1000 * per_query['BK-tree']:.3f}", ""],
            ["brute all-pairs (s)", f"{timings['brute all-pairs']:.3f}",
             "(computes every neighbourhood)"],
        ],
        title="Ablation: Hamming radius search strategies (radius 8)",
    )
    write_output("ablation_index", text)

    # MIH queries must be fast in absolute terms.
    assert per_query["MIH"] < 0.05
