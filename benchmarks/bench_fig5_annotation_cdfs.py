"""Fig. 5 — CDFs of KYM entries per cluster and clusters per KYM entry.

Paper: (a) most annotated clusters match a single KYM entry (74% on
/pol/, 70% on T_D, 58% on Gab) but a few match many (Conspiracy Keanu:
126); (b) many entries annotate one cluster, while popular memes
annotate dozens (Happy Merchant: 124 clusters on /pol/).
"""

import numpy as np

from benchmarks.conftest import once
from repro.analysis.popularity import (
    clusters_per_entry_counts,
    entries_per_cluster_counts,
)
from repro.analysis.stats import cdf_at
from repro.communities.models import DISPLAY_NAMES, FRINGE_COMMUNITIES
from repro.utils.tables import format_table


def test_fig5_annotation_cdfs(benchmark, bench_pipeline, write_output):
    data = once(
        benchmark,
        lambda: {
            community: (
                entries_per_cluster_counts(bench_pipeline, community),
                clusters_per_entry_counts(bench_pipeline, community),
            )
            for community in FRINGE_COMMUNITIES
        },
    )
    rows = []
    for community, (per_cluster, per_entry) in data.items():
        single_cluster = float(cdf_at(per_cluster, np.array([1]))[0])
        single_entry = float(cdf_at(per_entry, np.array([1]))[0])
        rows.append(
            [
                DISPLAY_NAMES[community],
                f"{100 * single_cluster:.0f}%",
                int(per_cluster.max()) if per_cluster.size else 0,
                f"{100 * single_entry:.0f}%",
                int(per_entry.max()) if per_entry.size else 0,
            ]
        )
    text = format_table(
        rows,
        headers=[
            "Community",
            "clusters w/ 1 entry",
            "max entries/cluster",
            "entries w/ 1 cluster",
            "max clusters/entry",
        ],
        title="Fig. 5: annotation multiplicity",
    )
    write_output("fig5_annotation_cdfs", text)

    pol_per_cluster, pol_per_entry = data["pol"]
    # (a) the single-entry case is the most common, but overlap exists.
    single = float(cdf_at(pol_per_cluster, np.array([1]))[0])
    assert single > 0.35
    assert pol_per_cluster.max() >= 2
    # (b) some entries annotate several clusters (meme branching).
    assert pol_per_entry.max() >= 3
