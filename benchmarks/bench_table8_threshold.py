"""Table 8 / Appendix A — DBSCAN threshold sweep.

Paper:

    Distance  #Clusters  %Noise
    2         30,327     82.9%
    4         34,146     78.5%
    6         37,292     73.0%
    8         38,851     62.8%
    10        30,737     27.8%

Shape: noise decreases monotonically with distance; the cluster count
*peaks near distance 8* and drops at 10 (nearby clusters merge).
"""

import numpy as np

from benchmarks.conftest import once
from repro.clustering.evaluation import sweep_thresholds
from repro.utils.tables import format_table


def test_table8_threshold_sweep(benchmark, bench_world, write_output):
    image_hashes = np.array(
        [post.phash for post in bench_world.posts if post.community == "pol"],
        dtype=np.uint64,
    )
    rows = once(
        benchmark,
        lambda: sweep_thresholds(image_hashes, distances=(2, 4, 6, 8, 10)),
    )
    text = format_table(
        [
            [row.distance, row.n_clusters, f"{100 * row.noise_fraction:.1f}%"]
            for row in rows
        ],
        headers=["Distance", "#Clusters", "%Noise"],
        title="Table 8: /pol/ clustering vs DBSCAN distance",
    )
    write_output("table8_threshold", text)

    noise = [row.noise_fraction for row in rows]
    clusters = [row.n_clusters for row in rows]
    # Noise strictly decreases with the distance threshold.
    assert all(b <= a + 1e-9 for a, b in zip(noise, noise[1:]))
    # Non-monotone cluster count: intermediate thresholds (4-8) yield
    # more clusters than the tight extreme (2, which shatters variants
    # below min_samples), and 10 merges clusters back together.  The
    # paper's peak sits at 8; ours lands at 4-6 — see EXPERIMENTS.md.
    peak = max(clusters[1:4])
    assert peak > clusters[0]
    assert clusters[4] < peak
    # The paper's 60-70% noise band around the operating point d=8.
    assert 0.55 <= noise[3] <= 0.75
