"""Fault-tolerance overhead — staged runner checkpoint/resume.

The paper's production run took weeks; a restartable pipeline only pays
for itself if (a) checkpointing adds negligible overhead to a clean run
and (b) resuming is dramatically cheaper than recomputing.  This bench
measures both on the benchmark-scale world.
"""

import time
from pathlib import Path

from benchmarks.conftest import once
from repro.core import PipelineConfig, RunnerOptions, run_pipeline
from repro.utils.tables import format_table


def test_runner_checkpoint_resume_overhead(
    benchmark, bench_world, write_output, tmp_path_factory
):
    checkpoint_dir = Path(tmp_path_factory.mktemp("runner-ckpt"))

    start = time.perf_counter()
    plain = run_pipeline(bench_world, PipelineConfig())
    plain_s = time.perf_counter() - start

    start = time.perf_counter()
    checkpointed = run_pipeline(
        bench_world,
        PipelineConfig(),
        options=RunnerOptions(checkpoint_dir=checkpoint_dir),
    )
    checkpointed_s = time.perf_counter() - start

    resumed = once(
        benchmark,
        lambda: run_pipeline(
            bench_world,
            PipelineConfig(),
            options=RunnerOptions(checkpoint_dir=checkpoint_dir, resume=True),
        ),
    )
    resumed_s = benchmark.stats.stats.mean

    assert resumed.cluster_keys == checkpointed.cluster_keys == plain.cluster_keys
    assert all(report.resumed for report in resumed.stage_reports)
    checkpoint_bytes = sum(
        path.stat().st_size for path in checkpoint_dir.iterdir()
    )
    text = format_table(
        [
            ["plain run (s)", f"{plain_s:.2f}"],
            ["checkpointed run (s)", f"{checkpointed_s:.2f}"],
            ["resumed run (s)", f"{resumed_s:.2f}"],
            ["checkpoint overhead", f"{checkpointed_s / plain_s - 1:+.1%}"],
            ["resume speedup", f"{plain_s / max(resumed_s, 1e-9):.1f}x"],
            ["checkpoint size (KiB)", f"{checkpoint_bytes / 1024:.0f}"],
        ],
        title="Staged runner: checkpoint overhead and resume speedup",
    )
    write_output("runner_checkpoint", text)

    # Resuming must be at least several times faster than recomputing.
    assert resumed_s < plain_s / 2
