"""Fig. 9 — vote-score CDFs on Reddit and Gab.

Paper: on Reddit, politics memes score higher (mean 224.7 vs 124.9) and
racist memes lower (94.8 vs 141.6); on Gab, politics ~ non-politics
(87.3 vs 82.4) while non-racist memes score over 2x racist ones (84.7 vs
35.5).
"""

from benchmarks.conftest import once
from repro.analysis.scores import score_summary, scores_by_group
from repro.utils.tables import format_table


def test_fig9_score_distributions(benchmark, bench_pipeline, write_output):
    splits = once(
        benchmark,
        lambda: {
            (community, group): scores_by_group(bench_pipeline, community, group)
            for community in ("reddit", "gab")
            for group in ("politics", "racist")
        },
    )
    rows = []
    for (community, group), split in splits.items():
        inside = score_summary(split.in_group)
        outside = score_summary(split.out_group)
        rows.append(
            [
                community,
                group,
                f"{inside['mean']:.1f}",
                f"{outside['mean']:.1f}",
                f"{split.mean_ratio():.2f}",
                int(inside["n"]),
                int(outside["n"]),
            ]
        )
    text = format_table(
        rows,
        headers=["community", "group", "mean in", "mean out", "ratio", "n in", "n out"],
        title="Fig. 9: score means for group vs complement",
    )
    write_output("fig9_scores", text)

    # Reddit: politics above, racist below.
    assert splits[("reddit", "politics")].mean_ratio() > 1.0
    assert splits[("reddit", "racist")].mean_ratio() < 1.0
    # Gab: politics roughly level; racist clearly below.
    gab_politics = splits[("gab", "politics")].mean_ratio()
    assert 0.5 < gab_politics < 2.5
    assert splits[("gab", "racist")].mean_ratio() < 0.9
