"""Table 6 — top subreddits for all / racist / politics memes.

Paper: The_Donald tops all three lists (12.5% of all meme posts, 9.3% of
racist, 26.4% of politics); AdviceAnimals appears in every list; the
top-ten covers only a minority of Reddit's meme posts (long tail).
"""

from benchmarks.conftest import once
from repro.analysis.subreddits import top_subreddits
from repro.utils.tables import format_table


def test_table6_top_subreddits(benchmark, bench_pipeline, write_output):
    tables = once(
        benchmark,
        lambda: {
            group: top_subreddits(bench_pipeline, group=group, n=10)
            for group in ("all", "racist", "politics")
        },
    )
    sections = []
    for group, rows in tables.items():
        text = format_table(
            [[row.subreddit, row.posts, f"{row.percent:.1f}%"] for row in rows],
            headers=["Subreddit", "Posts", "%"],
            title=f"Table 6 ({group} memes): top subreddits",
        )
        sections.append(text)
    write_output("table6_subreddits", "\n\n".join(sections))

    for group in ("all", "politics"):
        assert tables[group][0].subreddit == "The_Donald", group
    # The_Donald's share of politics memes exceeds its share of all memes.
    all_share = tables["all"][0].percent
    politics_share = tables["politics"][0].percent
    assert politics_share > all_share
    # AdviceAnimals infiltrates the lists (paper Section 4.2.4).
    named = {row.subreddit for rows in tables.values() for row in rows}
    assert "AdviceAnimals" in named
    # Long tail: the top ten do not cover the majority of meme posts.
    assert sum(row.percent for row in tables["all"]) < 60.0
