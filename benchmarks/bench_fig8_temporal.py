"""Fig. 8 — percentage of posts per day containing memes.

Paper: activity peaks around the 2016 US election on /pol/ and Reddit;
Twitter's politics series peaks at the 2nd presidential debate; Gab's
meme usage grows over time; /pol/ shares racist memes steadily while Gab
is bursty; fringe communities carry far more racist memes than
mainstream ones.
"""

import numpy as np

from benchmarks.conftest import once
from repro.analysis.temporal import daily_meme_share
from repro.utils.tables import format_table


def test_fig8_temporal_series(benchmark, bench_world, bench_pipeline, write_output):
    series = once(
        benchmark,
        lambda: {
            group: daily_meme_share(bench_world, bench_pipeline, group=group)
            for group in ("all", "racist", "politics")
        },
    )
    config = bench_world.config
    rows = []
    for group, data in series.items():
        for community in ("pol", "reddit", "twitter", "gab"):
            rows.append(
                [
                    group,
                    community,
                    f"{data.percent_by_community[community].mean():.3f}",
                    f"{data.peak_day(community):.0f}",
                ]
            )
    text = format_table(
        rows,
        headers=["group", "community", "mean %/day", "peak day"],
        title=(
            "Fig. 8: daily meme share (election day "
            f"~{config.election_day:.0f}, debate ~{config.debate_day:.0f})"
        ),
    )
    write_output("fig8_temporal", text)

    politics = series["politics"]
    # Election window elevated on /pol/ and Reddit.
    for community in ("pol", "reddit"):
        window = politics.mean_share(
            community,
            config.election_day - config.election_width,
            config.election_day + config.election_width,
        )
        late = politics.mean_share(community, 250.0, config.horizon_days)
        assert window > late, community

    # Gab's meme usage grows: second half above first half.
    gab_all = series["all"].percent_by_community["gab"]
    half = len(gab_all) // 2
    assert gab_all[half:].mean() > gab_all[:half].mean()

    # Racist series: fringe far above mainstream.
    racist = series["racist"]
    assert (
        racist.percent_by_community["pol"].mean()
        > 3 * racist.percent_by_community["twitter"].mean()
    )
