"""Ablation — what Step 4 (screenshot removal) buys.

The paper filters screenshots out of KYM galleries before matching
cluster medoids.  With filtering disabled, screenshot images in the
galleries can match screenshot-heavy junk clusters (and dilute the
representative-entry choice), producing annotations for clusters that
are not memes at all.  The synthetic world measures this directly: with
a screenshot-heavy KYM, count clusters whose annotation is wrong or
whose content is non-meme junk, with and without Step 4.
"""

from dataclasses import replace

from benchmarks.conftest import BENCH_WORLD_CONFIG, once
from repro.annotation.evaluation import annotation_accuracy, cluster_truth_labels
from repro.annotation.kym import SyntheticKYMConfig
from repro.communities import SyntheticWorld
from repro.core import PipelineConfig, run_pipeline
from repro.utils.tables import format_table


def test_ablation_screenshot_filter(benchmark, write_output):
    config = replace(
        BENCH_WORLD_CONFIG,
        seed=31337,
        events_unit=60.0,
        noise_scale=0.8,
        kym=SyntheticKYMConfig(screenshot_fraction=0.30),
    )
    world = SyntheticWorld.generate(config)

    def run():
        rows = {}
        for mode in ("oracle", "none"):
            result = run_pipeline(
                world, PipelineConfig(screenshot_filter=mode)
            )
            truth = cluster_truth_labels(world, result)
            junk_annotated = sum(
                1 for label in truth.values() if label is None
            )
            rows[mode] = (
                len(result.cluster_keys),
                junk_annotated,
                annotation_accuracy(world, result),
            )
        return rows

    rows = once(benchmark, run)
    text = format_table(
        [
            [mode, total, junk, f"{accuracy:.3f}"]
            for mode, (total, junk, accuracy) in rows.items()
        ],
        headers=["Step 4", "annotated clusters", "junk annotated", "accuracy"],
        title="Ablation: screenshot filtering of KYM galleries",
    )
    write_output("ablation_screenshot_filter", text)

    with_filter = rows["oracle"]
    without = rows["none"]
    # Disabling Step 4 annotates at least as many junk clusters and
    # never improves accuracy.
    assert without[1] >= with_filter[1]
    assert with_filter[2] >= without[2] - 1e-9
