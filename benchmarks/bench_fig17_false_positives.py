"""Fig. 17 / Appendix A — per-cluster false-positive fractions.

Paper: at distances 6 and 8 the overall false positives stay below ~3%
of cluster members, while distance 10 "yields a high number of false
positives".  The paper sampled 200 clusters and inspected manually; the
synthetic world knows every image's source template, so the fractions
are computed exactly over *all* clusters.
"""

import numpy as np

from benchmarks.conftest import once
from repro.clustering.dbscan import dbscan_images
from repro.clustering.evaluation import (
    cluster_false_positive_fractions,
    majority_purity,
)
from repro.utils.tables import format_table


def test_fig17_false_positive_cdf(benchmark, bench_world, write_output):
    posts = [p for p in bench_world.posts if p.community == "pol"]
    image_hashes = np.array([p.phash for p in posts], dtype=np.uint64)
    # Ground-truth source per unique hash.  Junk-series variants share a
    # series identity (strip the /v<k> suffix); one-off noise images are
    # their own source, which can only hurt purity.
    sources_by_hash = {}
    for post in posts:
        if post.template_name is not None:
            source = post.template_name
        elif post.image_id.startswith("junk/"):
            source = "junk:" + post.image_id.rsplit("/", 1)[0]
        else:
            source = "noise:" + post.image_id
        sources_by_hash[int(post.phash)] = source

    def run():
        results = {}
        for distance in (6, 8, 10):
            result, unique, _ = dbscan_images(image_hashes, eps=distance)
            sources = [sources_by_hash[int(h)] for h in unique]
            counts = np.array(
                [int(np.sum(image_hashes == h)) for h in unique], dtype=np.float64
            )
            fractions = cluster_false_positive_fractions(result.labels, sources)
            image_purity = majority_purity(result.labels, sources, counts)
            results[distance] = (fractions, image_purity)
        return results

    results = once(benchmark, run)
    rows = []
    for distance, (fractions, image_purity) in results.items():
        clean = float(np.mean(fractions == 0)) if fractions.size else 1.0
        rows.append(
            [
                distance,
                len(fractions),
                f"{100 * clean:.0f}%",
                f"{100 * float(fractions.mean()) if fractions.size else 0:.1f}%",
                f"{100 * image_purity:.1f}%",
            ]
        )
    text = format_table(
        rows,
        headers=[
            "distance",
            "clusters",
            "FP-free clusters",
            "mean FP",
            "image purity",
        ],
        title="Fig. 17: cluster false positives vs DBSCAN distance (/pol/)",
    )
    write_output("fig17_false_positives", text)

    mean_fp = {d: (f.mean() if f.size else 0.0) for d, (f, _) in results.items()}
    # Distances 6 and 8 stay clean, as in the paper.
    assert mean_fp[6] <= 0.10
    assert mean_fp[8] <= 0.12
    # Image-weighted purity at the operating point stays high (the
    # paper's true-positive-over-posts measure was 99.4%) and degrades
    # monotonically as the threshold loosens toward 10.
    assert results[8][1] >= 0.75
    assert results[6][1] >= results[8][1] >= results[10][1]
