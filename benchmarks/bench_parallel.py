#!/usr/bin/env python
"""Benchmark the parallel hot-path layer against the serial baseline.

Standalone (not pytest-benchmark): run as

    PYTHONPATH=src python benchmarks/bench_parallel.py [--workers 4]
        [--smoke] [--output BENCH_parallel.json]

Measures the four parallelised hot paths on synthetic workloads sized
like the paper's per-community image multisets:

* ``radius_neighbors`` (``method="mih"``) on a clustered 50k-hash
  multiset — the DBSCAN Step-2/3 bottleneck and the headline number:
  the batched shard kernel against the per-query reference path;
* ``hamming_distance_matrix`` row sharding;
* ``associate_hashes`` (Step 6) sharded over unique hashes;
* per-cluster Hawkes fits via :func:`fit_cluster_influence`.

Every record verifies the parallel output element-for-element against
serial before reporting a speedup — a fast wrong answer scores zero.

Note on mechanism: the headline wins are algorithmic and transport-
level, not core-count.  The batched shard kernel
(`mih_neighbors_shard`) replaced the per-query reference path for
serial callers too (reported as ``speedup``), and the
``parallel_vs_serial`` figure measures the full fan-out stack — the
``shm`` transport (inputs published once into POSIX shared memory,
shards shipped as zero-copy descriptors), the warm worker pool (fork
paid once, not per fan-out), and the env-gated compiled kernel tier
running inside the workers — against the serial numpy-tier baseline.
The decomposition rides in the record: ``pickle_parallel_s`` is the
old pickle-transport fan-out, ``shm_vs_pickle`` isolates the
transport, and the ``compiled_vs_numpy`` record isolates the kernel
tier serially.  On few-core hosts the compiled tier carries the
figure (the cores contribute nothing); the cost model still dispatches
per call — see the ``*_dispatch`` records.
"""

from __future__ import annotations

import argparse
import contextlib
import json
import os
import platform
import sys
import time
from dataclasses import replace

import numpy as np

from repro.analysis.influence import fit_cluster_influence
from repro.annotation.association import associate_hashes
from repro.hashing.index import MultiIndexHash
from repro.hashing.pairwise import radius_neighbors
from repro.hawkes.model import EventSequence
from repro.utils import compiled
from repro.utils.bitops import hamming_distance_matrix
from repro.utils.parallel import (
    TRANSPORTS,
    CostModel,
    Executor,
    ParallelConfig,
    effective_workers,
    get_worker_pool,
)


@contextlib.contextmanager
def _compiled_tier(value: str | None):
    """Pin ``REPRO_COMPILED`` for one measurement (``None`` = ambient).

    Workers fork from the parent, so the pinned value propagates into
    any pool spawned inside the block; the caller discards the warm
    pool around tier flips so no stale-tier worker survives them.
    """
    if value is None:
        yield
        return
    previous = os.environ.get(compiled.ENV_COMPILED)
    os.environ[compiled.ENV_COMPILED] = value
    compiled.refresh()
    try:
        yield
    finally:
        if previous is None:
            os.environ.pop(compiled.ENV_COMPILED, None)
        else:
            os.environ[compiled.ENV_COMPILED] = previous
        compiled.refresh()


def clustered_hashes(n_bases: int, members: int, seed: int = 7) -> np.ndarray:
    """Clustered pHash multiset: bases with 0-3 random bit flips each.

    Mimics the paper's data: near-duplicate variants of shared templates
    rather than uniform random codes (which would make MIH look
    unrealistically good).
    """
    rng = np.random.default_rng(seed)
    bases = rng.integers(0, 2**64, size=n_bases, dtype=np.uint64)
    out = np.repeat(bases, members)
    flips = rng.integers(0, 4, size=out.size)
    for bit in range(3):
        mask = flips > bit
        positions = rng.integers(0, 64, size=out.size, dtype=np.uint64)
        out[mask] ^= np.uint64(1) << positions[mask]
    return out


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def bench_radius_neighbors(
    n_hashes: int, parallel: ParallelConfig, smoke: bool = False
) -> dict:
    hashes = clustered_hashes(n_hashes // 10, 10)
    pin = (lambda _v: contextlib.nullcontext()) if smoke else _compiled_tier
    # Per-query reference: one MultiIndexHash lookup per hash.  This was
    # radius_neighbors' serial implementation before the batched shard
    # kernel started serving serial callers too; timing it keeps the
    # headline comparable across runs of this file and keeps the speedup
    # honest about where it comes from (batching, not core count).
    reference, reference_s = _timed(
        lambda: MultiIndexHash(hashes).radius_neighbors(8)
    )
    with pin("0"):
        serial, serial_s = _timed(
            lambda: radius_neighbors(hashes, 8, method="mih")
        )
        pickle_config = replace(parallel, transport="pickle")
        pickle_par, pickle_s = _timed(
            lambda: radius_neighbors(
                hashes, 8, method="mih", parallel=pickle_config
            )
        )
    # The full new stack: shm transport + warm pool + compiled tier in
    # the workers.  The keeper is discarded around the tier flip so the
    # timed fan-out's workers carry the pinned tier; the warm-up run
    # pays the one-time fork + segment setup the warm pool then
    # amortises across every later fan-out.
    get_worker_pool().discard()
    shm_config = replace(parallel, transport="shm")
    with pin("1"):
        tier = compiled.tier()
        radius_neighbors(hashes, 8, method="mih", parallel=shm_config)
        par, shm_s = _timed(
            lambda: radius_neighbors(
                hashes, 8, method="mih", parallel=shm_config
            )
        )
    get_worker_pool().discard()
    identical = (
        len(serial) == len(par) == len(reference) == len(pickle_par)
        and all(np.array_equal(a, b) for a, b in zip(serial, par))
        and all(np.array_equal(a, b) for a, b in zip(serial, pickle_par))
        and all(np.array_equal(a, b) for a, b in zip(serial, reference))
    )
    return {
        "name": "radius_neighbors_mih",
        "n_items": int(hashes.size),
        "radius": 8,
        "per_query_s": reference_s,
        "serial_s": serial_s,
        "pickle_parallel_s": pickle_s,
        "parallel_s": shm_s,
        "transport": "shm",
        "warm_pool": True,
        "compiled_tier": tier,
        # Batched serial kernel vs the per-query reference.
        "speedup": reference_s / serial_s if serial_s else float("inf"),
        # Headline: the full shm + warm-pool + compiled-worker stack
        # against the serial numpy-tier baseline.
        "parallel_vs_serial": serial_s / shm_s if shm_s else float("inf"),
        "shm_vs_pickle": pickle_s / shm_s if shm_s else float("inf"),
        "mechanism": (
            "shm transport removes per-shard input pickling, the warm "
            "pool removes the per-fan-out fork, and the compiled tier "
            "accelerates the worker-side kernel; on few-core hosts the "
            "tier carries the figure"
        ),
        "identical": identical,
    }


def bench_compiled_tier(n_hashes: int) -> dict:
    """Serial kernel-tier delta: compiled popcount loops vs numpy."""
    hashes = clustered_hashes(n_hashes // 10, 10, seed=23)
    with _compiled_tier("0"):
        baseline, numpy_s = _timed(
            lambda: radius_neighbors(hashes, 8, method="mih")
        )
    with _compiled_tier("1"):
        tier = compiled.tier()
        fast, compiled_s = _timed(
            lambda: radius_neighbors(hashes, 8, method="mih")
        )
    identical = len(baseline) == len(fast) and all(
        np.array_equal(a, b) for a, b in zip(baseline, fast)
    )
    return {
        "name": "compiled_vs_numpy",
        "n_items": int(hashes.size),
        "radius": 8,
        "tier": tier,
        "serial_s": numpy_s,
        "parallel_s": compiled_s,
        "speedup": numpy_s / compiled_s if compiled_s else float("inf"),
        "identical": identical,
    }


def bench_hamming_matrix(n: int, parallel: ParallelConfig) -> dict:
    rng = np.random.default_rng(11)
    a = rng.integers(0, 2**64, size=n, dtype=np.uint64)
    b = rng.integers(0, 2**64, size=n, dtype=np.uint64)
    serial, serial_s = _timed(lambda: hamming_distance_matrix(a, b))
    par, parallel_s = _timed(
        lambda: hamming_distance_matrix(a, b, parallel=parallel)
    )
    return {
        "name": "hamming_distance_matrix",
        "n_items": n,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s else float("inf"),
        "identical": bool(np.array_equal(serial, par)),
    }


def bench_association(n_hashes: int, n_medoids: int, parallel: ParallelConfig) -> dict:
    rng = np.random.default_rng(13)
    medoid_values = rng.integers(0, 2**64, size=n_medoids, dtype=np.uint64)
    medoids = {int(i): int(v) for i, v in enumerate(medoid_values)}
    near = np.repeat(medoid_values, 3) ^ np.uint64(1)
    hashes = np.concatenate(
        [near, clustered_hashes(max(1, (n_hashes - near.size) // 10), 10, seed=17)]
    )
    serial, serial_s = _timed(lambda: associate_hashes(hashes, medoids, theta=8))
    par, parallel_s = _timed(
        lambda: associate_hashes(hashes, medoids, theta=8, parallel=parallel)
    )
    identical = bool(
        np.array_equal(serial.cluster_ids, par.cluster_ids)
        and np.array_equal(serial.distances, par.distances)
    )
    return {
        "name": "associate_hashes",
        "n_items": int(hashes.size),
        "n_medoids": n_medoids,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s else float("inf"),
        "identical": identical,
    }


def bench_hawkes_fits(n_clusters: int, parallel: ParallelConfig) -> dict:
    rng = np.random.default_rng(19)
    k = 5
    sequences = []
    for _ in range(n_clusters):
        n_events = int(rng.integers(40, 120))
        times = np.sort(rng.uniform(0.0, 60.0, size=n_events))
        procs = rng.integers(0, k, size=n_events)
        sequences.append(EventSequence.from_unsorted(times, procs, 60.0))
    items = [(sequence, k, None) for sequence in sequences]
    serial, serial_s = _timed(
        lambda: [fit_cluster_influence(*item) for item in items]
    )
    par, parallel_s = _timed(
        lambda: Executor(parallel).starmap(fit_cluster_influence, items)
    )
    identical = all(
        s[0] == p[0]
        and (
            s[0] != "ok"
            or np.array_equal(s[1].expected_events, p[1].expected_events)
        )
        for s, p in zip(serial, par)
    )
    return {
        "name": "hawkes_fits",
        "n_items": n_clusters,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / parallel_s if parallel_s else float("inf"),
        "identical": identical,
    }


def _paired_best(serial_fn, dispatched_fn, calibrate, rounds: int = 4):
    """Alternate serial/dispatched timings; best (min) wall time per side.

    Pairing the rounds makes slow host drift hit both sides equally —
    which matters because on few-core hosts the two sides execute the
    *same* code (the dispatcher picks serial), so any reported gap is
    pure timing noise.  ``calibrate`` receives the first serial timing
    before the first dispatched call so the model chooses from an
    observed rate.
    """
    serial_result, serial_s = _timed(serial_fn)
    calibrate(serial_s)
    dispatch_result, dispatch_s = _timed(dispatched_fn)
    for _ in range(rounds - 1):
        _, elapsed = _timed(serial_fn)
        serial_s = min(serial_s, elapsed)
        _, elapsed = _timed(dispatched_fn)
        dispatch_s = min(dispatch_s, elapsed)
    return serial_result, serial_s, dispatch_result, dispatch_s


def bench_cost_dispatch(parallel: ParallelConfig) -> list[dict]:
    """The calibrated dispatcher must erase the sub-1x regressions.

    BENCH_parallel.json once recorded ``hamming_distance_matrix`` at
    0.07x and ``associate_hashes`` at 0.94x under an unconditional
    4-worker process fan-out on a 1-core host.  Here each kernel's
    serial run calibrates a :class:`CostModel`; the same pool config
    *with* the model then routes through ``dispatched()``, which picks
    the cheapest backend per call.  Dispatch must never lose to serial
    beyond timing noise — on an oversubscribed host it simply chooses
    serial, elsewhere it keeps the winning fan-out.
    """
    model = CostModel()
    dispatching = replace(parallel, cost_model=model)
    records = []

    rng = np.random.default_rng(29)
    n = 2_000
    a = rng.integers(0, 2**64, size=n, dtype=np.uint64)
    b = rng.integers(0, 2**64, size=n, dtype=np.uint64)
    serial, serial_s, par, dispatch_s = _paired_best(
        lambda: hamming_distance_matrix(a, b),
        lambda: hamming_distance_matrix(a, b, parallel=dispatching),
        lambda s: model.observe("hamming_distance_matrix", "serial", n * n, s),
    )
    chosen = model.choose("hamming_distance_matrix", n * n, parallel)
    records.append({
        "name": "hamming_distance_matrix_dispatch",
        "n_items": n,
        "serial_s": serial_s,
        "parallel_s": dispatch_s,
        "speedup": serial_s / dispatch_s if dispatch_s else float("inf"),
        "dispatch_backend": chosen.resolved_backend(),
        "dispatch_workers": chosen.workers,
        "identical": bool(np.array_equal(serial, par)),
    })

    medoid_values = rng.integers(0, 2**64, size=200, dtype=np.uint64)
    medoids = {int(i): int(v) for i, v in enumerate(medoid_values)}
    hashes = clustered_hashes(4_000, 10, seed=31)
    n_unique = int(np.unique(hashes).size)
    serial, serial_s, par, dispatch_s = _paired_best(
        lambda: associate_hashes(hashes, medoids, theta=8),
        lambda: associate_hashes(hashes, medoids, theta=8, parallel=dispatching),
        lambda s: model.observe("associate_hashes", "serial", n_unique, s),
    )
    chosen = model.choose("associate_hashes", n_unique, parallel)
    records.append({
        "name": "associate_hashes_dispatch",
        "n_items": int(hashes.size),
        "n_medoids": len(medoids),
        "serial_s": serial_s,
        "parallel_s": dispatch_s,
        "speedup": serial_s / dispatch_s if dispatch_s else float("inf"),
        "dispatch_backend": chosen.resolved_backend(),
        "dispatch_workers": chosen.workers,
        "identical": bool(
            np.array_equal(serial.cluster_ids, par.cluster_ids)
            and np.array_equal(serial.distances, par.distances)
        ),
    })
    return records


def bench_supervision_overhead(
    parallel: ParallelConfig, repeats: int = 5
) -> dict:
    """Clean-path cost of the supervision ladder vs. the plain fan-out.

    The supervised path must stay within 5% of plain ``starmap`` when no
    shard misbehaves — supervision is bookkeeping, not a slow path.

    Measured on the serial execution path regardless of ``--backend``:
    the ladder's clean-path cost (chaos consultation, ShardReport
    bookkeeping, ordered collection) is identical per shard on every
    backend.  The asserted number is the *directly attributed* ladder
    time — supervised wall-clock minus the in-shard compute the
    ShardReports record — as a fraction of the run, median over rounds.
    A paired plain-vs-supervised wall-clock ratio is reported alongside
    for information only: on a loaded CI box, scheduler stalls swing
    either side's wall-clock by multiples (not percent), so no honest
    wall-clock ratio can hold a 5% threshold, while the attributed
    ladder time is self-normalising (a stall lands inside some shard's
    duration and cancels out of the subtraction).
    """
    rng = np.random.default_rng(23)
    a = rng.integers(0, 2**64, size=1600, dtype=np.uint64)
    b = rng.integers(0, 2**64, size=1600, dtype=np.uint64)
    items = [(a, b) for _ in range(8)]
    executor = Executor(replace(parallel, workers=1))

    plain = executor.starmap(hamming_distance_matrix, items)  # warm-up
    sup = executor.supervised_starmap(hamming_distance_matrix, items)
    for _ in range(2):  # two more pairs: converge the allocator
        executor.starmap(hamming_distance_matrix, items)
        executor.supervised_starmap(hamming_distance_matrix, items)
    rounds = []
    for round_index in range(repeats):
        # Alternate order within the pair: whichever side runs second
        # inherits a warm allocator, and a fixed order would bias the
        # informational ratio in its favour.
        if round_index % 2 == 0:
            _, round_plain_s = _timed(
                lambda: executor.starmap(hamming_distance_matrix, items)
            )
            round_sup, round_supervised_s = _timed(
                lambda: executor.supervised_starmap(
                    hamming_distance_matrix, items
                )
            )
        else:
            round_sup, round_supervised_s = _timed(
                lambda: executor.supervised_starmap(
                    hamming_distance_matrix, items
                )
            )
            _, round_plain_s = _timed(
                lambda: executor.starmap(hamming_distance_matrix, items)
            )
        in_shard_s = sum(
            shard.duration_s for shard in round_sup.report.shards
        )
        ladder_pct = (
            100.0 * (round_supervised_s - in_shard_s) / round_supervised_s
            if round_supervised_s
            else 0.0
        )
        rounds.append(
            (ladder_pct, round_plain_s, round_supervised_s,
             round_supervised_s / round_plain_s)
        )
    rounds.sort()
    overhead_pct, plain_s, supervised_s, wall_ratio = (
        rounds[len(rounds) // 2]
    )
    identical = sup.complete and all(
        np.array_equal(s, p) for s, p in zip(sup.results, plain)
    )
    clean = all(
        shard.outcome == "ok" and shard.attempts == 1
        for shard in sup.report.shards
    )
    return {
        "name": "supervision_overhead",
        "n_items": len(items),
        "plain_s": plain_s,
        "supervised_s": supervised_s,
        "overhead_pct": overhead_pct,
        "wall_ratio_informational": wall_ratio,
        "identical": identical,
        "clean_path": clean,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument(
        "--backend", choices=("thread", "process"), default="process"
    )
    parser.add_argument(
        "--transport",
        choices=TRANSPORTS,
        default="shm",
        help="shard transport for the non-headline fan-outs (the "
        "radius_neighbors record always measures both)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny workloads: verify identity and JSON shape, skip the "
        "speedup assertion (for CI)",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(os.path.dirname(__file__), "..", "BENCH_parallel.json"),
    )
    args = parser.parse_args(argv)
    parallel = ParallelConfig(
        workers=args.workers,
        backend=args.backend,
        transport=args.transport,
    )

    if args.smoke:
        sizes = dict(neighbors=2_000, matrix=500, assoc=5_000, medoids=50, hawkes=4)
    else:
        sizes = dict(neighbors=50_000, matrix=4_000, assoc=200_000, medoids=1_000, hawkes=20)

    records = []
    capped = effective_workers(args.workers)
    print(f"workers={args.workers} (effective={capped}) "
          f"backend={args.backend} transport={args.transport} "
          f"cpus={os.cpu_count()} compiled={compiled.tier()} "
          f"smoke={args.smoke}", flush=True)
    for record in (
        bench_radius_neighbors(sizes["neighbors"], parallel, smoke=args.smoke),
        bench_compiled_tier(sizes["neighbors"] if not args.smoke else 2_000),
        bench_hamming_matrix(sizes["matrix"], parallel),
        bench_association(sizes["assoc"], sizes["medoids"], parallel),
        bench_hawkes_fits(sizes["hawkes"], parallel),
        *bench_cost_dispatch(parallel),
    ):
        records.append(record)
        dispatch = (
            f"  -> {record['dispatch_backend']}x{record['dispatch_workers']}"
            if "dispatch_backend" in record
            else ""
        )
        if "per_query_s" in record:
            dispatch += (
                f"  [per-query={record['per_query_s']:.3f}s, "
                f"pickle={record['pickle_parallel_s']:.3f}s, "
                f"shm/serial={record['parallel_vs_serial']:.2f}x, "
                f"shm/pickle={record['shm_vs_pickle']:.2f}x, "
                f"tier={record['compiled_tier']}]"
            )
        if record["name"] == "compiled_vs_numpy":
            dispatch += f"  [tier={record['tier']}]"
        print(
            f"  {record['name']:32s} n={record['n_items']:>7,}  "
            f"serial={record['serial_s']:8.3f}s  "
            f"parallel={record['parallel_s']:8.3f}s  "
            f"speedup={record['speedup']:5.2f}x  "
            f"identical={record['identical']}{dispatch}",
            flush=True,
        )

    overhead = bench_supervision_overhead(parallel)
    records.append(overhead)
    print(
        f"  {overhead['name']:28s} n={overhead['n_items']:>7,}  "
        f"plain={overhead['plain_s']:8.3f}s  "
        f"supervised={overhead['supervised_s']:8.3f}s  "
        f"ladder={overhead['overhead_pct']:+5.2f}%  "
        f"wall-ratio={overhead['wall_ratio_informational']:5.2f}  "
        f"identical={overhead['identical']} "
        f"clean={overhead['clean_path']}",
        flush=True,
    )

    payload = {
        "benchmark": "parallel hot paths (ISSUE 2) + supervision (ISSUE 4)",
        "host": {
            "cpu_count": os.cpu_count(),
            "platform": platform.platform(),
            "python": platform.python_version(),
            "numpy": np.__version__,
        },
        "config": {
            "workers": args.workers,
            "effective_workers": capped,
            "backend": args.backend,
            "smoke": args.smoke,
        },
        "records": records,
    }
    output = os.path.abspath(args.output)
    with open(output, "w") as handle:
        json.dump(payload, handle, indent=2)
    print(f"wrote {output}")

    if not all(record["identical"] for record in records):
        print("FAIL: parallel output differs from serial", file=sys.stderr)
        return 1
    if not overhead["clean_path"]:
        print(
            "FAIL: supervision retried/rescued shards on a clean workload",
            file=sys.stderr,
        )
        return 1
    if overhead["overhead_pct"] >= 5.0:
        print(
            f"FAIL: supervision ladder consumed "
            f"{overhead['overhead_pct']:.1f}% >= 5% of the clean-path run",
            file=sys.stderr,
        )
        return 1
    headline = records[0]
    if not args.smoke and headline["speedup"] < 2.0:
        print(
            f"FAIL: headline batched-vs-per-query speedup "
            f"{headline['speedup']:.2f}x < 2x",
            file=sys.stderr,
        )
        return 1
    if not args.smoke and headline["parallel_vs_serial"] < 1.5:
        print(
            f"FAIL: shm-stack fan-out at "
            f"{headline['parallel_vs_serial']:.2f}x < 1.5x vs serial",
            file=sys.stderr,
        )
        return 1
    if not args.smoke:
        for record in records:
            if "dispatch_backend" not in record:
                continue
            # 0.9x allows timing noise on identical code paths; a real
            # regression (the historical 0.07x) is far below it.
            if record["speedup"] < 0.9:
                print(
                    f"FAIL: cost-model dispatch left {record['name']} at "
                    f"{record['speedup']:.2f}x vs serial",
                    file=sys.stderr,
                )
                return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
