#!/usr/bin/env python
"""Benchmark the content-addressed cache: cold vs warm vs +1% delta.

Standalone (not pytest-benchmark): run as

    PYTHONPATH=src python benchmarks/bench_cache.py [--smoke]
        [--output BENCH_cache.json]

Three measured pipeline runs over the same synthetic corpus:

* **cold** — empty cache directory; every stage computes and stores;
* **warm** — identical inputs; every stage must report ``cached`` and
  the result must be bit-identical to the cold run;
* **delta** — the corpus grown by ~1% appended posts; clustering and
  association reuse the cached slots and do suffix/merge work only,
  again bit-identical to a cold run over the grown corpus.

The headline assertion (skipped under ``--smoke``) is warm/cold > 5x:
a warm re-run pays only fingerprinting and checkpoint reads, never the
hashing/clustering/annotation compute.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import shutil
import sys
import tempfile
import time

import numpy as np

from repro.communities import FRINGE_COMMUNITIES, SyntheticWorld, WorldConfig
from repro.core import PipelineConfig, RunnerOptions, run_pipeline


class GrownWorld:
    """A world whose post stream gained ``extra`` appended posts."""

    def __init__(self, world, extra):
        self.posts = list(world.posts) + list(extra)
        self.kym_site = world.kym_site
        self.library = world.library
        self.config = world.config


def _timed(fn):
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def identical(a, b) -> bool:
    """Bit-level equality of everything downstream analysis consumes."""
    if set(a.clusterings) != set(b.clusterings):
        return False
    for community in a.clusterings:
        ca, cb = a.clusterings[community], b.clusterings[community]
        if not (
            np.array_equal(ca.unique_hashes, cb.unique_hashes)
            and np.array_equal(ca.counts, cb.counts)
            and np.array_equal(ca.result.labels, cb.result.labels)
            and ca.medoids == cb.medoids
        ):
            return False
    return (
        a.cluster_keys == b.cluster_keys
        and np.array_equal(
            a.occurrences.cluster_indices, b.occurrences.cluster_indices
        )
        and a.occurrences.entry_names == b.occurrences.entry_names
    )


def fresh_world(world_config: WorldConfig):
    return SyntheticWorld.generate(world_config)


def grown_world(world_config: WorldConfig, fraction: float = 0.01):
    """The same world with ~``fraction`` extra posts appended.

    The extras duplicate *non-fringe* posts, so every fringe clustering
    (and its medoids) is untouched and the delta run exercises the
    cheap paths: full cluster/annotate hits plus association over the
    appended suffix only.
    """
    world = fresh_world(world_config)
    mainstream = [
        post
        for post in world.posts
        if post.community not in FRINGE_COMMUNITIES
    ]
    n_extra = max(1, int(len(world.posts) * fraction))
    stride = max(1, len(mainstream) // n_extra)
    return GrownWorld(world, mainstream[::stride][:n_extra])


def run(world, cache_dir=None):
    options = (
        RunnerOptions(cache_dir=cache_dir) if cache_dir is not None else None
    )
    return run_pipeline(world, PipelineConfig(), options=options)


def stage_cache_summary(result) -> dict:
    return {
        report.name: {
            "cached": report.cached,
            "hits": report.cache_stats.hits if report.cache_stats else 0,
            "misses": report.cache_stats.misses if report.cache_stats else 0,
            "deltas": dict(report.cache_stats.deltas)
            if report.cache_stats
            else {},
        }
        for report in result.stage_reports
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny corpus: verify cache hits, bit-identity, and JSON "
        "shape, skip the speedup assertion (for CI)",
    )
    parser.add_argument("--seed", type=int, default=1234)
    parser.add_argument(
        "--output",
        default=os.path.join(os.path.dirname(__file__), "..", "BENCH_cache.json"),
    )
    args = parser.parse_args(argv)
    world_config = WorldConfig(
        seed=args.seed,
        events_unit=10.0 if args.smoke else 75.0,
        noise_scale=0.8,
    )

    work_dir = tempfile.mkdtemp(prefix="bench-cache-")
    cache_dir = os.path.join(work_dir, "cache")
    try:
        # Worlds are generated OUTSIDE the timers: the benchmark measures
        # the pipeline, and the cache cannot (and should not) speed up
        # synthetic-corpus generation.
        cold_world = fresh_world(world_config)
        warm_world = fresh_world(world_config)
        grown = grown_world(world_config)
        grown_again = grown_world(world_config)
        n_posts = len(cold_world.posts)
        n_extra = len(grown.posts) - n_posts
        print(f"corpus: seed={world_config.seed} "
              f"events_unit={world_config.events_unit} "
              f"posts={n_posts:,}", flush=True)

        cold, cold_s = _timed(lambda: run(cold_world, cache_dir))
        print(f"  cold   {cold_s:8.3f}s", flush=True)

        warm, warm_s = _timed(lambda: run(warm_world, cache_dir))
        warm_cached = all(report.cached for report in warm.stage_reports)
        print(f"  warm   {warm_s:8.3f}s  all-cached={warm_cached}  "
              f"speedup={cold_s / warm_s:5.1f}x", flush=True)

        cold_grown, cold_grown_s = _timed(lambda: run(grown_again))
        delta, delta_s = _timed(lambda: run(grown, cache_dir))
        print(f"  delta  {delta_s:8.3f}s  (+{n_extra} posts, cold over the "
              f"grown corpus {cold_grown_s:.3f}s, "
              f"speedup={cold_grown_s / delta_s:5.1f}x)", flush=True)

        warm_identical = identical(cold, warm)
        delta_identical = identical(cold_grown, delta)
        payload = {
            "benchmark": "content-addressed cache (ISSUE 5)",
            "host": {
                "cpu_count": os.cpu_count(),
                "platform": platform.platform(),
                "python": platform.python_version(),
                "numpy": np.__version__,
            },
            "config": {
                "seed": world_config.seed,
                "events_unit": world_config.events_unit,
                "smoke": args.smoke,
                "n_posts": n_posts,
                "n_extra_posts": n_extra,
            },
            "records": [
                {"name": "cold", "seconds": cold_s},
                {
                    "name": "warm",
                    "seconds": warm_s,
                    "speedup_vs_cold": cold_s / warm_s if warm_s else float("inf"),
                    "all_stages_cached": warm_cached,
                    "identical_to_cold": warm_identical,
                    "stages": stage_cache_summary(warm),
                },
                {
                    "name": "delta_1pct",
                    "seconds": delta_s,
                    "cold_seconds": cold_grown_s,
                    "speedup_vs_cold": cold_grown_s / delta_s
                    if delta_s
                    else float("inf"),
                    "identical_to_cold": delta_identical,
                    "stages": stage_cache_summary(delta),
                },
            ],
        }
        output = os.path.abspath(args.output)
        with open(output, "w") as handle:
            json.dump(payload, handle, indent=2)
        print(f"wrote {output}")

        if not warm_identical or not delta_identical:
            print("FAIL: cached run differs from cold recompute", file=sys.stderr)
            return 1
        if not warm_cached:
            print("FAIL: warm run recomputed at least one stage", file=sys.stderr)
            return 1
        associate = delta.stage_report("associate")
        if associate.cache_stats is None or not any(
            label == "associate:added" for label in associate.cache_stats.deltas
        ):
            print(
                "FAIL: delta run did not take the associate prefix path",
                file=sys.stderr,
            )
            return 1
        if not args.smoke and cold_s / warm_s <= 5.0:
            print(
                f"FAIL: warm speedup {cold_s / warm_s:.1f}x <= 5x",
                file=sys.stderr,
            )
            return 1
        return 0
    finally:
        shutil.rmtree(work_dir, ignore_errors=True)


if __name__ == "__main__":
    raise SystemExit(main())
