"""Table 2 — clustering statistics per fringe community.

Paper:

    Platform  #Images    Noise  #Clusters  #Clusters w/ KYM tags
    /pol/     4,325,648  63%    38,851     9,265 (24%)
    T_D       1,234,940  64%    21,917     2,902 (13%)
    Gab         235,222  69%     3,083       447 (15%)

Shape to reproduce: noise in the 60-75% band everywhere; /pol/ with by
far the most clusters; a minority of clusters annotated.
"""

from benchmarks.conftest import once
from repro.communities.models import DISPLAY_NAMES, FRINGE_COMMUNITIES
from repro.core import PipelineConfig
from repro.core.pipeline import cluster_community
from repro.utils.tables import format_table


def test_table2_clustering_statistics(
    benchmark, bench_world, bench_pipeline, write_output
):
    # Time the heaviest clustering (the /pol/ image multiset).
    once(
        benchmark,
        lambda: cluster_community("pol", bench_world.posts, PipelineConfig()),
    )
    rows = []
    for community in FRINGE_COMMUNITIES:
        clustering = bench_pipeline.clusterings[community]
        annotated = bench_pipeline.n_annotated(community)
        rows.append(
            [
                DISPLAY_NAMES[community],
                clustering.n_images,
                f"{100 * clustering.image_noise_fraction:.0f}%",
                clustering.n_clusters,
                f"{annotated} ({100 * annotated / max(clustering.n_clusters, 1):.0f}%)",
            ]
        )
    text = format_table(
        rows,
        headers=["Platform", "#Images", "Noise", "#Clusters", "#Annotated"],
        title="Table 2: clustering statistics (synthetic world)",
    )
    write_output("table2_clustering", text)

    pol = bench_pipeline.clusterings["pol"]
    td = bench_pipeline.clusterings["the_donald"]
    gab = bench_pipeline.clusterings["gab"]
    # Paper band (63-69%), with slack for the small communities.
    assert 0.50 <= pol.image_noise_fraction <= 0.80
    assert 0.50 <= td.image_noise_fraction <= 0.85
    assert 0.50 <= gab.image_noise_fraction <= 0.85
    # /pol/ produces the most clusters, Gab the fewest.
    assert pol.n_clusters > td.n_clusters > gab.n_clusters
    # Only part of the clusters receive KYM annotations.
    for community in FRINGE_COMMUNITIES:
        clustering = bench_pipeline.clusterings[community]
        annotated = bench_pipeline.n_annotated(community)
        assert 0 < annotated < clustering.n_clusters
