"""Ablation — the custom metric's annotation features.

The paper argues the metric must mix perceptual similarity with
annotation overlap (Section 2.3's weight rationale).  This bench builds
the Fig. 7 graph under three weightings — perceptual only, annotations
only, and the paper's blend — and compares how well connected components
align with meme identity.  The measured trade-off: perceptual-only
connects more pairs but pollutes components with cross-meme edges
(lower purity); the blend keeps components meme-pure — the property
Fig. 7's "one colour per component" depends on.
"""

import networkx as nx

from benchmarks.conftest import once
from repro.analysis.graph import build_cluster_graph, component_purity
from repro.core.config import MetricWeights
from repro.utils.tables import format_table


def _same_meme_pairs_connected(result, graph: nx.Graph) -> int:
    """Connected node pairs sharing a representative annotation."""
    count = 0
    for component in nx.connected_components(graph):
        nodes = list(component)
        labels = [graph.nodes[n]["label"] for n in nodes]
        for i in range(len(nodes)):
            for j in range(i + 1, len(nodes)):
                if labels[i] == labels[j]:
                    count += 1
    return count


def test_ablation_metric_features(benchmark, bench_pipeline, write_output):
    weightings = {
        "perceptual only": MetricWeights.partial_mode(),
        "annotations only": MetricWeights(
            perceptual=0.0, meme=0.8, people=0.1, culture=0.1
        ),
        "paper blend": MetricWeights(),
    }

    def run():
        outcomes = {}
        for name, weights in weightings.items():
            graph = build_cluster_graph(
                bench_pipeline, kappa=0.45, weights=weights
            )
            summary = component_purity(graph)
            pairs = _same_meme_pairs_connected(bench_pipeline, graph)
            outcomes[name] = (summary, pairs)
        return outcomes

    outcomes = once(benchmark, run)
    text = format_table(
        [
            [
                name,
                summary.n_edges,
                summary.n_components,
                f"{summary.weighted_component_purity:.2f}",
                pairs,
            ]
            for name, (summary, pairs) in outcomes.items()
        ],
        headers=["weights", "edges", "components", "purity", "same-meme pairs"],
        title="Ablation: metric feature weights vs graph quality (kappa=0.45)",
    )
    write_output("ablation_metric", text)

    blend_summary, blend_pairs = outcomes["paper blend"]
    perceptual_summary, perceptual_pairs = outcomes["perceptual only"]
    # The blend keeps components meme-pure (Fig. 7's colour-purity)...
    assert blend_summary.weighted_component_purity >= 0.85
    assert (
        blend_summary.weighted_component_purity
        >= perceptual_summary.weighted_component_purity
    )
    # ...while still recovering same-meme structure.
    assert blend_pairs > 0
