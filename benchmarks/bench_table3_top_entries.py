"""Table 3 — top KYM entries by number of annotated clusters.

Paper: Donald Trump annotates the most clusters on all three fringe
communities (207 on /pol/, 177 on The_Donald, 25 on Gab); frog memes and
the Happy Merchant rank high on /pol/; the top-20 covers 17-27% of each
community's annotated clusters.
"""

from benchmarks.conftest import once
from repro.analysis.popularity import top_entries_by_clusters
from repro.communities.models import DISPLAY_NAMES, FRINGE_COMMUNITIES
from repro.utils.tables import format_table


def test_table3_top_entries_by_clusters(
    benchmark, bench_world, bench_pipeline, write_output
):
    site = bench_world.kym_site
    tables = once(
        benchmark,
        lambda: {
            community: top_entries_by_clusters(
                bench_pipeline, site, community, n=20
            )
            for community in FRINGE_COMMUNITIES
        },
    )
    sections = []
    for community, rows in tables.items():
        text = format_table(
            [
                [row.entry, row.category, row.count, f"{row.percent:.1f}%",
                 row.markers()]
                for row in rows
            ],
            headers=["Entry", "Category", "Clusters", "%", ""],
            title=f"Table 3 ({DISPLAY_NAMES[community]}): top entries by clusters",
        )
        sections.append(text)
    write_output("table3_top_entries", "\n\n".join(sections))

    pol_rows = tables["pol"]
    assert pol_rows, "no annotated clusters on /pol/"
    pol_names = [row.entry for row in pol_rows]
    # The paper's recurring entities appear in /pol/'s table.
    frogs = {"pepe-the-frog", "smug-frog", "feels-bad-man-sad-frog",
             "apu-apustaja", "angry-pepe"}
    assert frogs & set(pol_names)
    assert {"donald-trump", "make-america-great-again"} & set(pol_names)
    # Racist entries present on fringe communities.
    assert any(row.is_racist for row in pol_rows)
    # Top-20 covers a sizeable but minority share (paper: 17-27%).
    coverage = sum(row.percent for row in pol_rows)
    assert 10.0 < coverage <= 100.0
