"""Section 7 (Performance) — association throughput.

Paper: comparing 74M Twitter images against the 12K annotated medoids
took 12 days on two Titan Xp GPUs — 73 images/second.  This bench
measures the multi-index-hashing association path on commodity CPU and
reports the equivalent figure.
"""

import numpy as np

from repro.annotation.association import associate_hashes
from repro.utils.tables import format_table


def test_perf_association_throughput(
    benchmark, bench_world, bench_pipeline, write_output
):
    medoids = {
        index: int(annotation.medoid_hash)
        for index, key in enumerate(bench_pipeline.cluster_keys)
        for annotation in [bench_pipeline.annotations[key]]
    }
    hashes = np.array([post.phash for post in bench_world.posts], dtype=np.uint64)

    result = benchmark(lambda: associate_hashes(hashes, medoids, theta=8))
    stats = benchmark.stats.stats
    throughput = hashes.size / stats.mean
    text = format_table(
        [
            ["images", hashes.size],
            ["annotated medoids", len(medoids)],
            ["mean wall time (s)", f"{stats.mean:.3f}"],
            ["throughput (images/s)", f"{throughput:,.0f}"],
            ["paper (2x Titan Xp, brute force)", "73 images/s"],
        ],
        title="Performance: Step 6 association throughput (MIH, CPU)",
    )
    write_output("perf_association", text)

    # The index must beat the paper's brute-force GPU number by orders
    # of magnitude at this scale.
    assert throughput > 1000
