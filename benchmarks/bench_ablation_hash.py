"""Ablation — why the pipeline hashes with pHash.

The paper picks the DCT pHash without comparing alternatives.  This
bench runs the comparison: for each of pHash / aHash / dHash, hash a set
of meme templates and their light variants, and measure (a) variant
recall — how often a variant lands within the clustering threshold of
its template — and (b) template separation — how often *unrelated*
templates collide within the threshold.  A good meme-tracking hash
maximises recall at near-zero collision.
"""

import numpy as np

from benchmarks.conftest import once
from repro.hashing.alternatives import HASHERS
from repro.images.templates import TemplateLibrary
from repro.images.transforms import random_variant
from repro.utils.bitops import hamming_distance
from repro.utils.rng import derive_rng
from repro.utils.tables import format_table

THRESHOLD = 8
N_VARIANTS = 12


def test_ablation_hash_functions(benchmark, write_output):
    library = TemplateLibrary.build(
        derive_rng(71, "templates"),
        {"a": 5, "b": 5, "c": 5, "d": 5},
    )
    rng = derive_rng(72, "variants")
    renders = [t.render(64) for t in library]
    variant_sets = [
        [random_variant(image, rng) for _ in range(N_VARIANTS)]
        for image in renders
    ]

    def run():
        scores = {}
        for name, hasher in HASHERS.items():
            base_hashes = [hasher(image) for image in renders]
            recall_hits = 0
            recall_total = 0
            for base_hash, variants in zip(base_hashes, variant_sets):
                for variant in variants:
                    recall_total += 1
                    if hamming_distance(base_hash, hasher(variant)) <= THRESHOLD:
                        recall_hits += 1
            collisions = 0
            pairs = 0
            for i in range(len(base_hashes)):
                for j in range(i + 1, len(base_hashes)):
                    pairs += 1
                    if hamming_distance(base_hashes[i], base_hashes[j]) <= THRESHOLD:
                        collisions += 1
            scores[name] = (recall_hits / recall_total, collisions / pairs)
        return scores

    scores = once(benchmark, run)
    text = format_table(
        [
            [name, f"{recall:.2f}", f"{collision:.3f}"]
            for name, (recall, collision) in scores.items()
        ],
        headers=["hash", "variant recall @8", "template collision @8"],
        title="Ablation: perceptual hash functions for meme tracking",
    )
    write_output("ablation_hash", text)

    phash_recall, phash_collision = scores["phash"]
    # pHash keeps collisions near zero with useful recall.
    assert phash_collision <= 0.05
    assert phash_recall >= 0.5
    # And dominates at least one alternative on the recall/collision
    # trade-off (recall no worse while colliding no more, or strictly
    # fewer collisions).
    dominated = 0
    for name in ("ahash", "dhash"):
        recall, collision = scores[name]
        if (phash_recall >= recall and phash_collision <= collision) or (
            phash_collision < collision
        ):
            dominated += 1
    assert dominated >= 1
