"""Ablation — excitation-kernel width vs attribution quality.

Justifies the library's default (a tight fixed kernel, beta = 4): on the
synthetic world the planted root-cause matrix is known, so the
attribution error of each kernel choice is measurable.  Wide kernels let
distant high-volume sources soak up credit; learned beta recovers the
true timescale but inherits the wide-window bias.
"""

import numpy as np

from benchmarks.conftest import once
from repro.analysis.influence import (
    cluster_event_sequences,
    ground_truth_influence,
)
from repro.hawkes.attribution import InfluenceMatrices, attribute_root_causes
from repro.hawkes.fit import FitConfig, fit_hawkes_em
from repro.hawkes.kernels import ExponentialKernel
from repro.utils.tables import format_table

K = 5


def _study(sequences, config) -> InfluenceMatrices:
    total = InfluenceMatrices.zeros(K)
    for sequence in sequences:
        fit = fit_hawkes_em([sequence], K, config)
        roots = attribute_root_causes(fit.model, sequence)
        expected = np.zeros((K, K))
        for destination in range(K):
            mask = sequence.processes == destination
            if np.any(mask):
                expected[:, destination] = roots[mask].sum(axis=0)
        total = total + InfluenceMatrices(expected, sequence.counts(K))
    return total


def test_ablation_kernel_width(
    benchmark, bench_world, bench_pipeline, write_output
):
    sequences = list(
        cluster_event_sequences(
            bench_pipeline, bench_world.config.horizon_days, min_events=10
        ).values()
    )
    truth = ground_truth_influence(bench_world).percent_of_destination()
    configs = {
        "beta=1 (wide)": FitConfig(kernel=ExponentialKernel(1.0)),
        "beta=2": FitConfig(kernel=ExponentialKernel(2.0)),
        "beta=4 (default)": FitConfig(),
        "beta=8 (tight)": FitConfig(kernel=ExponentialKernel(8.0)),
        "learned beta": FitConfig(learn_beta=True),
    }

    def run():
        errors = {}
        for name, config in configs.items():
            estimated = _study(sequences, config).percent_of_destination()
            diff = np.abs(estimated - truth)
            errors[name] = (float(diff.mean()), float(diff.max()))
        return errors

    errors = once(benchmark, run)
    text = format_table(
        [
            [name, f"{mean:.2f}", f"{worst:.1f}"]
            for name, (mean, worst) in errors.items()
        ],
        headers=["kernel", "mean abs error (pp)", "max abs error (pp)"],
        title="Ablation: attribution error vs kernel width (vs planted truth)",
    )
    write_output("ablation_kernel", text)

    # Tight kernels beat the wide one.
    assert errors["beta=4 (default)"][0] < errors["beta=1 (wide)"][0]
    # The default is competitive with the best configuration tried.
    best = min(mean for mean, _ in errors.values())
    assert errors["beta=4 (default)"][0] <= best * 1.5 + 0.5
