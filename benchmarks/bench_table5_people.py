"""Table 5 — top people entries by matched posts.

Paper: Donald Trump is the most-depicted person on every community
(/pol/ 4.6%, Reddit 6.1%, Gab 6.1%, Twitter 1.3%); other politicians
(Clinton, Sanders, Putin, Obama) follow; Adolf Hitler appears on every
platform.
"""

from benchmarks.conftest import once
from repro.analysis.popularity import top_entries_by_posts
from repro.communities.models import DISPLAY_NAMES
from repro.utils.tables import format_table

TABLE5_COMMUNITIES = ("pol", "reddit", "gab", "twitter")


def test_table5_top_people(benchmark, bench_world, bench_pipeline, write_output):
    site = bench_world.kym_site
    tables = once(
        benchmark,
        lambda: {
            community: top_entries_by_posts(
                bench_pipeline, site, community, n=15, category="people"
            )
            for community in TABLE5_COMMUNITIES
        },
    )
    sections = []
    for community, rows in tables.items():
        text = format_table(
            [[row.entry, row.count, f"{row.percent:.2f}%"] for row in rows],
            headers=["Entry", "Posts", "%"],
            title=f"Table 5 ({DISPLAY_NAMES[community]}): top people by posts",
        )
        sections.append(text)
    write_output("table5_people", "\n\n".join(sections))

    # Donald Trump ranks at the very top on the large communities.
    for community in ("pol", "reddit", "twitter"):
        rows = tables[community]
        assert rows, f"no people entries matched on {community}"
        top3 = [row.entry for row in rows[:3]]
        assert "donald-trump" in top3, (community, top3)
    # Hitler memes present on /pol/ (the paper's Nazi-sympathy signal).
    assert "adolf-hitler" in [row.entry for row in tables["pol"]]
