"""Table 4 — top meme entries by number of matched posts per community.

Paper headlines reproduced here: frog memes dominate /pol/ (Sad Frog
4.9%, Smug Frog 4.8%, Happy Merchant 3.8%); mainstream communities lead
with neutral reaction memes (Roll Safe / Evil Kermit on Twitter,
Manning Face / That's the Joke on Reddit); racist memes are marked (R),
politics memes (P).
"""

from benchmarks.conftest import once
from repro.analysis.popularity import top_entries_by_posts
from repro.communities.models import DISPLAY_NAMES
from repro.utils.tables import format_table

TABLE4_COMMUNITIES = ("pol", "reddit", "gab", "twitter")


def test_table4_top_memes_by_posts(
    benchmark, bench_world, bench_pipeline, write_output
):
    site = bench_world.kym_site
    tables = once(
        benchmark,
        lambda: {
            community: top_entries_by_posts(
                bench_pipeline, site, community, n=20, category="memes"
            )
            for community in TABLE4_COMMUNITIES
        },
    )
    sections = []
    for community, rows in tables.items():
        text = format_table(
            [
                [row.entry, row.count, f"{row.percent:.1f}%", row.markers()]
                for row in rows
            ],
            headers=["Entry", "Posts", "%", ""],
            title=f"Table 4 ({DISPLAY_NAMES[community]}): top memes by posts",
        )
        sections.append(text)
    write_output("table4_top_memes", "\n\n".join(sections))

    def racist_share(community):
        rows = tables[community]
        total = sum(row.count for row in rows) or 1
        return sum(row.count for row in rows if row.is_racist) / total

    # Fringe communities over-index on racist memes vs mainstream.
    assert racist_share("pol") > racist_share("twitter")
    assert racist_share("gab") >= racist_share("twitter")

    # Frog memes rank high on /pol/.
    pol_top10 = {row.entry for row in tables["pol"][:10]}
    frogs = {"pepe-the-frog", "smug-frog", "feels-bad-man-sad-frog",
             "apu-apustaja", "angry-pepe", "cult-of-kek"}
    assert pol_top10 & frogs

    # Mainstream tops with neutral memes.
    twitter_top5 = tables["twitter"][:5]
    assert any(
        not row.is_racist and not row.is_politics for row in twitter_top5
    )
