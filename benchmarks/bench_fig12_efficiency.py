"""Fig. 12 — influence normalised by the source's events (efficiency).

Paper headline: The_Donald has by far the greatest per-meme external
influence (13.55% Total-Ext, >4x the next community), while /pol/ —
despite its raw dominance — is the *least efficient* (4.03%): "a
staggering number of memes are posted on /pol/, but only the best make
it out".
"""

from benchmarks.conftest import once
from repro.communities.models import COMMUNITIES, DISPLAY_NAMES
from repro.utils.tables import format_table


def test_fig12_normalized_efficiency(benchmark, bench_influence, write_output):
    normalized = once(benchmark, bench_influence.total.normalized_by_source)
    total_ext = bench_influence.total.total_external_normalized()
    rows = [
        [DISPLAY_NAMES[COMMUNITIES[s]]]
        + [f"{normalized[s, d]:.2f}%" for d in range(len(COMMUNITIES))]
        + [f"{total_ext[s]:.2f}%"]
        for s in range(len(COMMUNITIES))
    ]
    headers = (
        ["Source \\ Dest"] + [DISPLAY_NAMES[c] for c in COMMUNITIES] + ["Total Ext"]
    )
    text = format_table(
        rows, headers=headers, title="Fig. 12: influence normalised by source events"
    )
    write_output("fig12_efficiency", text)

    index = {name: k for k, name in enumerate(COMMUNITIES)}
    counts = bench_influence.total.event_counts
    # The_Donald is the most efficient external spreader among the
    # communities with a substantive fitted event count (normalised
    # estimates for tiny communities are high-variance).
    substantive = [k for k in range(len(COMMUNITIES)) if counts[k] >= 100]
    td = index["the_donald"]
    assert td in substantive
    assert total_ext[td] == max(total_ext[k] for k in substantive)
    # /pol/ is the least efficient among the high-volume communities.
    pol = total_ext[index["pol"]]
    assert pol < total_ext[td]
    assert pol <= total_ext[index["reddit"]] + 0.5
