"""On the Origins of Memes — first-seen timelines vs Hawkes attribution.

The paper's methodological claim (Section 5): Hawkes root-cause
attribution "is a far better approach when compared to simple approaches
like looking at the timeline of specific memes or pHashes".  On crawled
data that claim could not be scored; on the synthetic world the
generator's latent roots are known, so this bench quantifies it: the
mean probability mass attribution places on true roots vs the accuracy
of crediting each cluster's first-seen community.
"""

from benchmarks.conftest import once
from repro.analysis.origins import (
    first_seen_origins,
    origin_summary,
    score_origin_methods,
)
from repro.utils.tables import format_table


def test_origins_attribution_vs_first_seen(
    benchmark, bench_world, bench_pipeline, write_output
):
    scores = once(
        benchmark, lambda: score_origin_methods(bench_world, bench_pipeline)
    )
    summary = origin_summary(first_seen_origins(bench_pipeline))
    rows = [
        ["first-seen (naive) accuracy", f"{scores['naive_accuracy']:.3f}"],
        ["Hawkes attribution mass on true root", f"{scores['attributed_mass']:.3f}"],
    ]
    text = "\n\n".join(
        [
            format_table(
                rows, title="Origins: naive timeline vs root-cause attribution"
            ),
            format_table(
                sorted(summary.items(), key=lambda kv: -kv[1]),
                headers=["community", "clusters first seen"],
                title="First-seen origin of annotated clusters",
            ),
        ]
    )
    write_output("origins", text)

    # Both methods beat chance (5 communities -> 0.2), and attribution
    # is at least competitive with the naive heuristic (the paper's
    # argument for adopting Hawkes processes).
    assert scores["naive_accuracy"] > 0.25
    assert scores["attributed_mass"] > 0.5
    assert scores["attributed_mass"] >= scores["naive_accuracy"] - 0.05
