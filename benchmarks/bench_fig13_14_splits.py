"""Figs. 13/14 — raw influence split by racist and political clusters.

Paper: /pol/'s share of other communities' racist meme postings exceeds
its share of their non-racist ones (e.g. Reddit 18.8% vs 13.1%); for
political memes /pol/ and The_Donald gain relative influence.  Cells are
starred when two-sample KS tests find the per-cluster influence
distributions significantly different (p < 0.01).
"""

import numpy as np

from benchmarks.conftest import once
from repro.analysis.influence import ground_truth_influence, ks_significance_matrix
from repro.communities.models import COMMUNITIES, DISPLAY_NAMES
from repro.utils.tables import format_table


def split_table(study, group_a: str, group_b: str, title: str, p_values) -> str:
    a = study.group(group_a).percent_of_destination()
    b = study.group(group_b).percent_of_destination()
    rows = []
    for s in range(len(COMMUNITIES)):
        cells = []
        for d in range(len(COMMUNITIES)):
            star = "*" if np.isfinite(p_values[s, d]) and p_values[s, d] < 0.01 else ""
            cells.append(f"{a[s, d]:.1f}/{b[s, d]:.1f}{star}")
        rows.append([DISPLAY_NAMES[COMMUNITIES[s]]] + cells)
    headers = ["Source \\ Dest"] + [DISPLAY_NAMES[c] for c in COMMUNITIES]
    return format_table(rows, headers=headers, title=title)


def test_fig13_14_group_influence(
    benchmark, bench_world, bench_influence, bench_pipeline, write_output
):
    p_racist, p_politics = once(
        benchmark,
        lambda: (
            ks_significance_matrix(bench_influence, bench_pipeline, "racist"),
            ks_significance_matrix(bench_influence, bench_pipeline, "politics"),
        ),
    )
    text = "\n\n".join(
        [
            split_table(
                bench_influence, "racist", "non_racist",
                "Fig. 13: racist/non-racist % of destination (R/NR, * = KS p<0.01)",
                p_racist,
            ),
            split_table(
                bench_influence, "politics", "non_politics",
                "Fig. 14: political/non-political % of destination (P/NP)",
                p_politics,
            ),
        ]
    )
    write_output("fig13_14_splits", text)

    index = {name: k for k, name in enumerate(COMMUNITIES)}
    pol = index["pol"]
    td = index["the_donald"]

    # The planted world must exhibit the paper's Fig. 13/14 phenomena
    # exactly (the generator's latent roots are the arbiter):
    truth_racist = ground_truth_influence(bench_world, group="racist")
    truth_non_racist = ground_truth_influence(bench_world, group="non_racist")
    tr = truth_racist.percent_of_destination()
    tnr = truth_non_racist.percent_of_destination()
    # /pol/'s share of destinations' racist postings exceeds its share
    # of their non-racist ones wherever racist memes actually land.
    for destination in ("reddit", "twitter", "gab"):
        d = index[destination]
        if truth_racist.event_counts[d] >= 30:
            assert tr[pol, d] > tnr[pol, d], destination

    truth_politics = ground_truth_influence(bench_world, group="politics")
    truth_non_politics = ground_truth_influence(bench_world, group="non_politics")
    tp = truth_politics.percent_of_destination()
    tnp = truth_non_politics.percent_of_destination()
    gains = [
        tp[td, index[c]] - tnp[td, index[c]] for c in ("pol", "reddit", "twitter")
    ]
    assert max(gains) > 0

    # The estimator reproduces the racist boost of /pol/ on destinations
    # with enough fitted racist events.
    racist = bench_influence.group("racist").percent_of_destination()
    non_racist = bench_influence.group("non_racist").percent_of_destination()
    racist_counts = bench_influence.group("racist").event_counts
    checked = [
        racist[pol, index[c]] > non_racist[pol, index[c]]
        for c in ("reddit", "twitter", "gab")
        if racist_counts[index[c]] >= 50
    ]
    assert not checked or any(checked)
