"""Fig. 7 — the cluster visualisation graph at kappa = 0.45.

Paper: "a large set of disconnected components, with each component
containing nodes of primarily one color" — i.e. the custom metric
separates memes into label-pure components.
"""

from benchmarks.conftest import once
from repro.analysis.graph import build_cluster_graph, component_purity
from repro.utils.tables import format_table


def test_fig7_cluster_graph(benchmark, bench_pipeline, write_output):
    graph = once(
        benchmark, lambda: build_cluster_graph(bench_pipeline, kappa=0.45)
    )
    summary = component_purity(graph)
    text = format_table(
        [
            ["nodes (annotated clusters)", summary.n_nodes],
            ["edges (distance < 0.45)", summary.n_edges],
            ["connected components", summary.n_components],
            ["mean purity (multi-node)", f"{summary.mean_component_purity:.2f}"],
            ["weighted purity", f"{summary.weighted_component_purity:.2f}"],
        ],
        title="Fig. 7: cluster graph structure at kappa=0.45",
    )
    write_output("fig7_graph", text)

    assert summary.n_nodes == len(bench_pipeline.cluster_keys)
    assert summary.n_components > 5  # many disconnected components
    assert summary.weighted_component_purity > 0.8  # colour-pure
