"""Shared fixtures for the benchmark harness.

The benchmarks regenerate every table and figure of the paper's
evaluation on a benchmark-scale synthetic world (larger than the test
world).  The expensive artefacts — the world, the pipeline run, the
influence study — are session-scoped and shared by all benches.  Each
bench renders its table/series to ``benchmarks/output/<id>.txt`` so the
rows can be compared with the published ones (EXPERIMENTS.md records the
comparison).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.influence import influence_study
from repro.communities import SyntheticWorld, WorldConfig
from repro.core import PipelineConfig, run_pipeline

OUTPUT_DIR = Path(__file__).parent / "output"

BENCH_WORLD_CONFIG = WorldConfig(seed=2018, events_unit=150.0)


@pytest.fixture(scope="session")
def bench_world() -> SyntheticWorld:
    return SyntheticWorld.generate(BENCH_WORLD_CONFIG)


@pytest.fixture(scope="session")
def bench_pipeline(bench_world):
    return run_pipeline(bench_world, PipelineConfig())


@pytest.fixture(scope="session")
def bench_influence(bench_world, bench_pipeline):
    return influence_study(
        bench_pipeline, bench_world.config.horizon_days, min_events=10
    )


@pytest.fixture(scope="session")
def write_output():
    OUTPUT_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
        print(f"\n{text}\n")

    return write


def once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark timer and return its value."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
