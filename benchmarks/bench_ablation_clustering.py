"""Ablation — DBSCAN vs single-pass leader clustering.

The paper chose a density-based algorithm because it "can discover
clusters of arbitrary shape" — meme variants form elongated chains in
Hamming space (template -> variants -> jittered reposts), and tracking
a meme requires following the whole chain.  This bench quantifies the
trade-off on the /pol/ image multiset: leader clustering's fixed-radius
balls are very pure but *shatter* each meme into several fragments
(inflating the cluster count ~3x and leaving more images unclustered),
whereas DBSCAN's density chaining consolidates variants into one
cluster per meme group at a small purity cost.
"""

import numpy as np

from benchmarks.conftest import once
from repro.clustering.dbscan import NOISE, dbscan
from repro.clustering.evaluation import majority_purity
from repro.clustering.leader import leader_cluster
from repro.utils.tables import format_table


def test_ablation_clustering_algorithms(benchmark, bench_world, write_output):
    posts = [p for p in bench_world.posts if p.community == "pol"]
    image_hashes = np.array([p.phash for p in posts], dtype=np.uint64)
    unique, counts = np.unique(image_hashes, return_counts=True)
    sources_by_hash = {}
    for post in posts:
        if post.template_name is not None:
            source = post.template_name
        elif post.image_id.startswith("junk/"):
            source = "junk:" + post.image_id.rsplit("/", 1)[0]
        else:
            source = "noise:" + post.image_id
        sources_by_hash[int(post.phash)] = source
    sources = [sources_by_hash[int(h)] for h in unique]
    weights = counts.astype(np.float64)

    def run():
        outcomes = {}
        for name, cluster in (
            ("dbscan", lambda: dbscan(unique, eps=8, min_samples=5, counts=counts)),
            (
                "leader",
                lambda: leader_cluster(
                    unique, eps=8, min_cluster_size=5, counts=counts
                ),
            ),
        ):
            result = cluster()
            noise_images = float(
                counts[result.labels == NOISE].sum() / counts.sum()
            )
            # Fraction of clustered image mass that is one-off noise
            # (one-offs in clusters = spurious groupings).
            clustered = result.labels != NOISE
            clustered_mass = float(counts[clustered].sum()) or 1.0
            noise_in_clusters = float(
                sum(
                    c
                    for h, c, keep in zip(unique, counts, clustered)
                    if keep and sources_by_hash[int(h)].startswith("noise:")
                )
            )
            purity = majority_purity(result.labels, sources, weights)
            outcomes[name] = (
                result.n_clusters,
                noise_images,
                noise_in_clusters / clustered_mass,
                purity,
            )
        return outcomes

    outcomes = once(benchmark, run)
    text = format_table(
        [
            [
                name,
                n_clusters,
                f"{100 * noise:.1f}%",
                f"{100 * leaked:.1f}%",
                f"{100 * purity:.1f}%",
            ]
            for name, (n_clusters, noise, leaked, purity) in outcomes.items()
        ],
        headers=["algorithm", "clusters", "image noise", "one-offs clustered", "purity"],
        title="Ablation: DBSCAN vs leader clustering (/pol/, eps=8)",
    )
    write_output("ablation_clustering", text)

    dbscan_stats = outcomes["dbscan"]
    leader_stats = outcomes["leader"]
    # Leader's fixed-radius balls shatter variant chains: far more
    # clusters for the same memes (the fragmentation the paper avoids
    # by chaining "clusters of arbitrary shape").
    assert leader_stats[0] > 1.5 * dbscan_stats[0]
    # DBSCAN's chaining recovers more meme images from the noise pile.
    assert dbscan_stats[1] <= leader_stats[1] + 1e-9
    # Both remain usably pure; leader's tight balls are purer by
    # construction.
    assert dbscan_stats[3] >= 0.75
