"""Table 1 — dataset overview.

Paper (crawl scale):

    Platform  #Posts         #Posts w/ images  #Images      #Unique pHashes
    Twitter   1,469,582,378  242,723,732       114,459,736  74,234,065
    Reddit    1,081,701,536   62,321,628        40,523,275  30,441,325
    /pol/        48,725,043   13,190,390         4,325,648   3,626,184
    Gab          12,395,575      955,440           235,222     193,783

The synthetic world reproduces the *structure* (posts > posts-with-images
> images > unique pHashes per community; Twitter > Reddit > /pol/ > Gab in
image volume) at laptop scale.
"""

from benchmarks.conftest import once
from repro.communities.models import DISPLAY_NAMES
from repro.utils.tables import format_table


def test_table1_dataset_overview(benchmark, bench_world, write_output):
    stats = once(benchmark, bench_world.community_stats)
    rows = [
        [
            DISPLAY_NAMES[s.community],
            s.n_posts,
            s.n_posts_with_images,
            s.n_images,
            s.n_unique_phashes,
        ]
        for s in stats
    ]
    text = format_table(
        rows,
        headers=["Platform", "#Posts", "#Posts w/ images", "#Images", "#Unique"],
        title="Table 1: dataset overview (synthetic world)",
    )
    write_output("table1_datasets", text)

    by_name = {s.community: s for s in stats}
    # Structural invariants of the paper's Table 1.
    for s in stats:
        assert s.n_posts > s.n_posts_with_images
        assert s.n_posts_with_images >= s.n_images >= s.n_unique_phashes

    # Volume ordering: Twitter > Reddit > Gab on images; /pol/ > Gab.
    assert by_name["twitter"].n_images > by_name["reddit"].n_images * 0.8
    assert by_name["reddit"].n_images > by_name["gab"].n_images
    assert by_name["pol"].n_images > by_name["gab"].n_images
