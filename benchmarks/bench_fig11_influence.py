"""Fig. 11 — percent of destination events caused by each source (raw).

Paper: the self-cell is the largest influence for every destination
(90-97%); after that, /pol/ is the strongest external source for Reddit,
The_Donald and Gab, but *Twitter is most influenced by Reddit*.
"""

import numpy as np

from benchmarks.conftest import once
from repro.analysis.influence import ground_truth_influence
from repro.communities.models import COMMUNITIES, DISPLAY_NAMES
from repro.utils.tables import format_table


def matrix_table(matrix: np.ndarray, title: str) -> str:
    rows = [
        [DISPLAY_NAMES[COMMUNITIES[s]]]
        + [f"{matrix[s, d]:.2f}%" for d in range(len(COMMUNITIES))]
        for s in range(len(COMMUNITIES))
    ]
    headers = ["Source \\ Dest"] + [DISPLAY_NAMES[c] for c in COMMUNITIES]
    return format_table(rows, headers=headers, title=title)


def test_fig11_raw_influence(
    benchmark, bench_world, bench_influence, write_output
):
    pct = once(benchmark, bench_influence.total.percent_of_destination)
    truth = ground_truth_influence(bench_world).percent_of_destination()
    text = "\n\n".join(
        [
            matrix_table(pct, "Fig. 11: % of destination events caused by source (estimated)"),
            matrix_table(truth, "Fig. 11 (ground truth from the generator)"),
        ]
    )
    write_output("fig11_influence", text)

    index = {name: k for k, name in enumerate(COMMUNITIES)}
    counts = bench_influence.total.event_counts
    # Self-influence dominates each destination column.
    for destination in range(len(COMMUNITIES)):
        if counts[destination] < 30:
            continue
        column = pct[:, destination]
        assert column[destination] == column.max()
    # /pol/ is the strongest external source for Reddit and The_Donald.
    for destination in ("reddit", "the_donald"):
        d = index[destination]
        external = {
            source: pct[index[source], d]
            for source in COMMUNITIES
            if source != destination
        }
        assert max(external, key=external.get) == "pol", (destination, external)
    # Estimated matrix within tolerance of planted truth on big columns.
    for d in range(len(COMMUNITIES)):
        if counts[d] < 100:
            continue
        assert np.all(np.abs(pct[:, d] - truth[:, d]) < 15.0)
