"""Table 7 — Hawkes events per community (the fitted clusters).

Paper:

    /pol/      Twitter  Reddit   T_D     Gab
    1,574,045  865,885  581,803  81,924  44,918

Shape: /pol/ first, then Twitter, then Reddit, then The_Donald, then Gab.
"""

from benchmarks.conftest import once
from repro.analysis.influence import cluster_event_sequences
from repro.communities.models import COMMUNITIES, DISPLAY_NAMES
from repro.utils.tables import format_table


def test_table7_events_per_community(
    benchmark, bench_world, bench_pipeline, bench_influence, write_output
):
    once(
        benchmark,
        lambda: cluster_event_sequences(
            bench_pipeline, bench_world.config.horizon_days, min_events=10
        ),
    )
    counts = dict(zip(COMMUNITIES, bench_influence.event_counts()))
    ordered = sorted(counts.items(), key=lambda item: -item[1])
    text = format_table(
        [[DISPLAY_NAMES[name], int(count)] for name, count in ordered],
        headers=["Community", "Events"],
        title="Table 7: meme events per community (fitted clusters)",
    )
    write_output("table7_events", text)

    assert counts["pol"] > counts["twitter"]
    assert counts["twitter"] > counts["reddit"]
    assert counts["reddit"] > counts["the_donald"]
    assert counts["the_donald"] > counts["gab"] * 0.8
