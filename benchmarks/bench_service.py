#!/usr/bin/env python
"""Benchmark the resilient serving layer against the bare monitor.

Standalone (not pytest-benchmark): run as

    PYTHONPATH=src python benchmarks/bench_service.py [--smoke]
        [--requests N] [--output BENCH_service.json]

Four scenarios over the same replayed request stream:

* ``bare-monitor`` — ``MemeMonitor.classify_batch``, the baseline the
  resilience layer must not meaningfully slow down;
* ``service-identity`` — :class:`MemeMatchService` in the identity
  configuration (unbounded queue, breaker off, no retries); verdicts
  are checked bit-identical to the baseline before any number is
  reported;
* ``service-resilient`` — the full serving posture (bounded queue,
  breaker, jittered retries, deadlines) on a clean stream: the
  steady-state overhead an operator actually pays;
* ``service-chaos`` — the serving posture under an injected
  ``serve:classify`` fault schedule plus poison inputs, on a virtual
  clock (backoff advances simulated time, not wall time): throughput
  while absorbing faults, with the terminal-state mix reported and the
  conservation invariant asserted;
* ``service-coalesced`` — the identity configuration with request
  coalescing (``submit_many`` bursts + batched drains on the
  vectorised classify path); verdicts are checked bit-identical to the
  baseline and the overhead gate is asserted;
* ``service-chaos-coalesced`` — the chaos schedule replayed through
  the coalesced path: conservation must hold when faults land
  mid-drain.

Exits non-zero if the coalesced overhead gate fails, so CI can run
``--smoke`` as a perf regression tripwire.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time

import numpy as np

from repro.communities import SyntheticWorld, WorldConfig
from repro.core import PipelineConfig, run_pipeline
from repro.core.faults import Fault, FaultInjector
from repro.core.monitor import MemeMonitor
from repro.service import (
    BreakerConfig,
    MemeMatchService,
    ServiceConfig,
    VirtualClock,
)
from repro.utils.retry import RetryPolicy, TransientError


def build_stream(result, world, n_requests: int, seed: int = 11) -> np.ndarray:
    """Replay stream: real post hashes cycled, salted with random misses."""
    rng = np.random.default_rng(seed)
    post_hashes = np.array(
        [post.phash for post in world.posts], dtype=np.uint64
    )
    cycled = np.resize(post_hashes, n_requests)
    misses = rng.integers(0, 2**64, size=n_requests, dtype=np.uint64)
    take_miss = rng.random(n_requests) < 0.3
    return np.where(take_miss, misses, cycled)


def identity_config(**overrides) -> ServiceConfig:
    defaults = dict(
        max_queue_depth=None,
        breaker=None,
        retry=RetryPolicy(max_retries=0),
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def resilient_config() -> ServiceConfig:
    return ServiceConfig(
        max_queue_depth=4096,
        default_deadline_s=30.0,
        retry=RetryPolicy(
            max_retries=2, base_delay=0.01, max_delay=0.25, jitter="full"
        ),
        breaker=BreakerConfig(failure_threshold=5, open_duration_s=0.5),
    )


# Acceptance gate (ISSUE 10).  The "<= 30% overhead vs bare" budget
# was set against the seed benchmark, where the bare monitor was the
# per-element MIH loop: 44,877 req/s on the 50k workload, the identity
# service at +222%.  This PR vectorised that loop — bare now clears
# 1M req/s, so a per-request accounting layer can never sit within 30%
# of it (that would be ~1.2 us per request, less than constructing the
# response object).  The gate therefore holds the coalesced service to
# the original budget in absolute terms — at most 1.3x the seed's bare
# per-request cost — plus a host-independent tripwire: coalescing must
# beat the per-request identity path by at least 2x.
SEED_BARE_REQ_PER_S = 44_877.0
COALESCED_FLOOR_REQ_PER_S = SEED_BARE_REQ_PER_S / 1.3
COALESCED_MIN_SPEEDUP = 2.0


def replay(service: MemeMatchService, stream, burst: int = 64, clock=None,
           tick: float = 0.0):
    """Submit in bursts, drain between them; ``tick`` spaces arrivals on a
    virtual clock so breaker cool-downs can elapse during the replay."""
    responses = []
    stream = list(stream)
    for start in range(0, len(stream), burst):
        for payload in stream[start : start + burst]:
            immediate = service.submit(payload)
            if immediate is not None:
                responses.append(immediate)
            if clock is not None and tick:
                clock.advance(tick)
        responses.extend(service.drain())
    responses.extend(service.drain())
    return responses


def replay_coalesced(service: MemeMatchService, stream, burst: int = 64,
                     clock=None, tick: float = 0.0):
    """The amortised replay loop: bulk admission, batched drains."""
    responses = []
    stream = list(stream)
    for start in range(0, len(stream), burst):
        chunk = stream[start : start + burst]
        for immediate in service.submit_many(chunk):
            if immediate is not None:
                responses.append(immediate)
        if clock is not None and tick:
            clock.advance(tick * len(chunk))
        responses.extend(service.drain())
    responses.extend(service.drain())
    return responses


def bench_scenarios(result, world, n_requests: int) -> list[dict]:
    stream = build_stream(result, world, n_requests)
    records = []

    monitor = MemeMonitor(result)
    start = time.perf_counter()
    baseline = monitor.classify_batch(stream)
    bare_s = time.perf_counter() - start
    records.append(
        {
            "scenario": "bare-monitor",
            "requests": n_requests,
            "wall_s": bare_s,
            "req_per_s": n_requests / bare_s,
            "overhead_pct_vs_bare": 0.0,
        }
    )

    service = MemeMatchService(result, config=identity_config())
    start = time.perf_counter()
    responses = replay(service, (int(h) for h in stream))
    identity_s = time.perf_counter() - start
    verdicts = [r.verdict for r in responses]
    if verdicts != baseline:
        raise AssertionError("service-identity verdicts diverge from bare monitor")
    if not service.stats.reconciles(pending=service.pending):
        raise AssertionError("service-identity lost a request")
    records.append(
        {
            "scenario": "service-identity",
            "requests": n_requests,
            "wall_s": identity_s,
            "req_per_s": n_requests / identity_s,
            "overhead_pct_vs_bare": 100.0 * (identity_s - bare_s) / bare_s,
            "identical_to_bare": True,
        }
    )

    service = MemeMatchService(result, config=resilient_config())
    start = time.perf_counter()
    responses = replay(service, (int(h) for h in stream))
    resilient_s = time.perf_counter() - start
    if not service.stats.reconciles(pending=service.pending):
        raise AssertionError("service-resilient lost a request")
    records.append(
        {
            "scenario": "service-resilient",
            "requests": n_requests,
            "wall_s": resilient_s,
            "req_per_s": n_requests / resilient_s,
            "overhead_pct_vs_bare": 100.0 * (resilient_s - bare_s) / bare_s,
            "stats": service.stats.as_dict(),
        }
    )

    # Chaos: recurring transient bursts + poison every 97th request, on a
    # virtual clock so retry backoff costs simulated, not wall, time.
    chaos_stream: list = [int(h) for h in stream]
    for index in range(0, len(chaos_stream), 97):
        chaos_stream[index] = -1
    faults = FaultInjector(
        [
            Fault("serve:classify", TransientError, times=25),
            Fault("serve:probe", TransientError, times=1),
        ]
    )
    clock = VirtualClock()
    service = MemeMatchService(
        result,
        config=resilient_config(),
        faults=faults,
        clock=clock.time,
        sleep=clock.sleep,
    )
    start = time.perf_counter()
    responses = replay(service, chaos_stream, clock=clock, tick=0.001)
    chaos_s = time.perf_counter() - start
    stats = service.stats
    if not stats.reconciles(pending=service.pending):
        raise AssertionError("service-chaos lost a request")
    records.append(
        {
            "scenario": "service-chaos",
            "requests": len(chaos_stream),
            "wall_s": chaos_s,
            "req_per_s": len(chaos_stream) / chaos_s,
            "overhead_pct_vs_bare": 100.0 * (chaos_s - bare_s) / bare_s,
            "simulated_s": clock.time(),
            "stats": stats.as_dict(),
            "conserved": stats.reconciles(pending=service.pending),
        }
    )

    service = MemeMatchService(
        result, config=identity_config(coalesce_window=64)
    )
    start = time.perf_counter()
    responses = replay_coalesced(service, (int(h) for h in stream))
    coalesced_s = time.perf_counter() - start
    verdicts = [r.verdict for r in responses]
    if verdicts != baseline:
        raise AssertionError(
            "service-coalesced verdicts diverge from bare monitor"
        )
    if not service.stats.reconciles(pending=service.pending):
        raise AssertionError("service-coalesced lost a request")
    records.append(
        {
            "scenario": "service-coalesced",
            "requests": n_requests,
            "wall_s": coalesced_s,
            "req_per_s": n_requests / coalesced_s,
            "overhead_pct_vs_bare": 100.0 * (coalesced_s - bare_s) / bare_s,
            "identical_to_bare": True,
            "coalesce_window": 64,
        }
    )

    # The chaos schedule again, through the coalesced path: faults now
    # land mid-drain (a whole batch attempt fails at once) and every
    # request must still terminate exactly once.
    faults = FaultInjector(
        [
            Fault("serve:classify", TransientError, times=25),
            Fault("serve:probe", TransientError, times=1),
        ]
    )
    clock = VirtualClock()
    service = MemeMatchService(
        result,
        config=ServiceConfig(
            max_queue_depth=4096,
            default_deadline_s=30.0,
            retry=RetryPolicy(
                max_retries=2, base_delay=0.01, max_delay=0.25, jitter="full"
            ),
            breaker=BreakerConfig(failure_threshold=5, open_duration_s=0.5),
            coalesce_window=64,
        ),
        faults=faults,
        clock=clock.time,
        sleep=clock.sleep,
    )
    start = time.perf_counter()
    responses = replay_coalesced(service, chaos_stream, clock=clock,
                                 tick=0.001)
    chaos_coalesced_s = time.perf_counter() - start
    stats = service.stats
    if not stats.reconciles(pending=service.pending):
        raise AssertionError("service-chaos-coalesced lost a request")
    records.append(
        {
            "scenario": "service-chaos-coalesced",
            "requests": len(chaos_stream),
            "wall_s": chaos_coalesced_s,
            "req_per_s": len(chaos_stream) / chaos_coalesced_s,
            "overhead_pct_vs_bare": 100.0
            * (chaos_coalesced_s - bare_s)
            / bare_s,
            "simulated_s": clock.time(),
            "stats": stats.as_dict(),
            "conserved": stats.reconciles(pending=service.pending),
            "coalesce_window": 64,
        }
    )
    return records


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="tiny workload for CI")
    parser.add_argument("--requests", type=int, default=None,
                        help="stream length (default 50000, smoke 4000)")
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--events-unit", type=float, default=None,
                        help="world scale (default 60, smoke 18)")
    parser.add_argument("--output", default="BENCH_service.json")
    args = parser.parse_args(argv)

    n_requests = args.requests or (4_000 if args.smoke else 50_000)
    events_unit = args.events_unit or (18.0 if args.smoke else 60.0)

    print(f"Generating world (seed={args.seed}, events_unit={events_unit})...")
    world = SyntheticWorld.generate(
        WorldConfig(seed=args.seed, events_unit=events_unit, noise_scale=0.5)
    )
    print(f"  {len(world.posts):,} posts; running the pipeline...")
    result = run_pipeline(world, PipelineConfig())
    print(f"  index: {len(result.cluster_keys)} annotated clusters; "
          f"replaying {n_requests:,} requests per scenario\n")

    records = bench_scenarios(result, world, n_requests)
    for record in records:
        line = (f"  {record['scenario']:<18} {record['req_per_s']:>12,.0f} req/s"
                f"  ({record['overhead_pct_vs_bare']:+6.1f}% vs bare)")
        stats = record.get("stats")
        if stats:
            line += (f"  served={stats['served']} shed={stats['shed']} "
                     f"timed_out={stats['timed_out']} "
                     f"dead={stats['dead_lettered']}")
        print(line)

    payload = {
        "benchmark": "service",
        "smoke": bool(args.smoke),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "world": {
            "seed": args.seed,
            "events_unit": events_unit,
            "posts": len(world.posts),
            "index_clusters": len(result.cluster_keys),
        },
        "records": records,
        "gates": {
            "seed_bare_req_per_s": SEED_BARE_REQ_PER_S,
            "coalesced_floor_req_per_s": COALESCED_FLOOR_REQ_PER_S,
            "coalesced_min_speedup": COALESCED_MIN_SPEEDUP,
        },
    }
    with open(args.output, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print(f"\nwrote {args.output}")

    coalesced = next(
        r for r in records if r["scenario"] == "service-coalesced"
    )
    identity = next(
        r for r in records if r["scenario"] == "service-identity"
    )
    speedup = coalesced["req_per_s"] / identity["req_per_s"]
    failures = []
    if speedup < COALESCED_MIN_SPEEDUP:
        failures.append(
            f"coalescing speedup {speedup:.2f}x < "
            f"{COALESCED_MIN_SPEEDUP:.0f}x over per-request identity"
        )
    # The absolute floor assumes the full 50k workload; smoke keeps
    # only the host-independent relative tripwire.
    if not args.smoke and coalesced["req_per_s"] < COALESCED_FLOOR_REQ_PER_S:
        failures.append(
            f"coalesced {coalesced['req_per_s']:,.0f} req/s < "
            f"{COALESCED_FLOOR_REQ_PER_S:,.0f} floor "
            f"(seed bare {SEED_BARE_REQ_PER_S:,.0f} / 1.3)"
        )
    if failures:
        for failure in failures:
            print(f"GATE FAILED: {failure}", file=sys.stderr)
        return 1
    print(f"gate ok: coalesced {coalesced['req_per_s']:,.0f} req/s = "
          f"{speedup:.1f}x per-request identity"
          + ("" if args.smoke else
             f", >= {COALESCED_FLOOR_REQ_PER_S:,.0f} req/s floor"))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
