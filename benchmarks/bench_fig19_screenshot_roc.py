"""Fig. 19 / Appendix C — the screenshot classifier.

Paper: AUC 0.96, accuracy 91.3%, precision 94.3%, recall 93.5%,
F1 93.9% on the 20% holdout of the 28.8K-image curated dataset.
"""

from benchmarks.conftest import once
from repro.annotation.screenshots import (
    ScreenshotClassifier,
    build_screenshot_dataset,
)
from repro.utils.rng import derive_rng
from repro.utils.tables import format_table


def test_fig19_screenshot_classifier(benchmark, bench_world, write_output):
    rng = derive_rng(77, "bench-classifier")

    def run():
        x, y = build_screenshot_dataset(
            bench_world.library, rng, n_screenshots=350, n_organic=350
        )
        classifier = ScreenshotClassifier(rng)
        x_train, y_train, x_test, y_test = classifier.train_eval_split(x, y, rng)
        classifier.fit(x_train, y_train, epochs=6)
        return classifier.evaluate(x_test, y_test)

    report = once(benchmark, run)
    text = format_table(
        [
            ["AUC", f"{report.auc:.3f}", "0.96"],
            ["accuracy", f"{report.accuracy:.3f}", "0.913"],
            ["precision", f"{report.precision:.3f}", "0.943"],
            ["recall", f"{report.recall:.3f}", "0.935"],
            ["F1", f"{report.f1:.3f}", "0.939"],
            ["ROC points", str(len(report.fpr)), "-"],
        ],
        headers=["metric", "measured", "paper"],
        title="Fig. 19: screenshot classifier holdout evaluation",
    )
    write_output("fig19_screenshot_roc", text)

    assert report.auc >= 0.93
    assert report.accuracy >= 0.88
    assert report.precision >= 0.85
    assert report.recall >= 0.85
    assert report.f1 >= 0.88
