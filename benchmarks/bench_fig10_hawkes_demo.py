"""Fig. 10 — the Hawkes mechanics illustration, executed.

The figure explains how events raise intensities and how root causes are
attributed probabilistically.  This bench runs the actual machinery on a
three-process model: simulate with ground-truth parents, attribute with
the true model, and verify the attribution mass tracks the latent
structure event by event.
"""

import numpy as np

from benchmarks.conftest import once
from repro.hawkes import (
    ExponentialKernel,
    HawkesModel,
    attribute_root_causes,
    simulate_branching,
)
from repro.utils.tables import format_table


def test_fig10_attribution_mechanics(benchmark, write_output):
    model = HawkesModel(
        background=np.array([0.3, 0.25, 0.2]),
        weights=np.array(
            [[0.2, 0.25, 0.1], [0.05, 0.2, 0.25], [0.1, 0.05, 0.2]]
        ),
        kernel=ExponentialKernel(2.0),
    )
    rng = np.random.default_rng(10)

    def run():
        simulations = [simulate_branching(model, 300.0, rng) for _ in range(6)]
        agreement = []
        for simulation in simulations:
            roots = attribute_root_causes(model, simulation.sequence)
            # Probability mass the estimator assigns to the true root.
            mass = roots[np.arange(len(roots)), simulation.roots]
            agreement.append(float(mass.mean()))
        return simulations, agreement

    simulations, agreement = once(benchmark, run)
    n_events = sum(len(s.sequence) for s in simulations)
    n_immigrants = sum(int((s.parents == -1).sum()) for s in simulations)
    text = format_table(
        [
            ["events simulated", n_events],
            ["immigrants (background)", n_immigrants],
            ["offspring", n_events - n_immigrants],
            ["mean mass on true root", f"{np.mean(agreement):.2f}"],
        ],
        title="Fig. 10: Hawkes attribution mechanics",
    )
    write_output("fig10_hawkes_demo", text)

    # The attribution must beat the uniform baseline (1/3) by a wide
    # margin — causes are identifiable, as the figure argues.
    assert np.mean(agreement) > 0.6
    assert 0 < n_immigrants < n_events
