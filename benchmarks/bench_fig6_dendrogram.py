"""Fig. 6 — the frog-meme dendrogram.

Paper: 525 clusters of 23 frog memes group into large categories
dominated by Apu Apustaja, Sad Frog, Pepe and Smug Frog; clusters of the
same meme are hierarchically connected below the ~0.45 line.
"""

import numpy as np

from benchmarks.conftest import once
from repro.analysis.phylogeny import family_dendrogram
from repro.utils.tables import format_table

FROG_ENTRIES = {
    "pepe-the-frog",
    "smug-frog",
    "feels-bad-man-sad-frog",
    "apu-apustaja",
    "angry-pepe",
    "cult-of-kek",
}


def test_fig6_frog_dendrogram(benchmark, bench_pipeline, write_output):
    tree = once(
        benchmark, lambda: family_dendrogram(bench_pipeline, FROG_ENTRIES)
    )
    assert tree is not None, "not enough frog clusters"
    labels = tree.dendrogram.labels
    consistency = tree.cut_consistency(0.45)
    groups = tree.cut(0.45)
    text = "\n\n".join(
        [
            format_table(
                [
                    ["frog clusters", tree.dendrogram.n_leaves],
                    ["distinct frog memes", len(set(tree.representatives))],
                    ["groups at cut 0.45", int(len(np.unique(groups)))],
                    ["cut consistency @0.45", f"{consistency:.2f}"],
                ],
                title="Fig. 6: frog-meme dendrogram summary",
            ),
            "Leaves: " + " ".join(labels),
            "Dendrogram (merge log):\n" + tree.dendrogram.to_ascii(),
        ]
    )
    write_output("fig6_dendrogram", text)

    assert tree.dendrogram.n_leaves >= 6
    assert len(set(tree.representatives)) >= 3
    # The paper's reading of the red line: same-meme clusters group below.
    assert consistency >= 0.7
    # The cut produces multiple groups (not one blob, not all singletons).
    n_groups = len(np.unique(groups))
    assert 1 < n_groups < tree.dendrogram.n_leaves
